#include "serialize.hh"

#include <algorithm>
#include <charconv>
#include <cstdio>
#include <fstream>
#include <istream>
#include <iterator>
#include <ostream>
#include <sstream>

#include "util/journal.hh"

namespace ssim::core
{

namespace
{

constexpr const char *Magic = "ssim-profile";

// ---------------------------------------------------------------------
// Writing
// ---------------------------------------------------------------------

void
writeDistribution(std::ostream &os, const DiscreteDistribution &d)
{
    const auto &entries = d.entries();
    os << entries.size();
    for (const auto &[value, count] : entries)
        os << ' ' << value << ' ' << count;
    os << '\n';
}

void
writeSlot(std::ostream &os, const SlotStats &s)
{
    os << s.il1Access << ' ' << s.il1Miss << ' ' << s.il2Miss << ' '
       << s.itlbMiss << ' ' << s.dl1Miss << ' ' << s.dl2Miss << ' '
       << s.dtlbMiss << '\n';
    writeDistribution(os, s.depDist[0]);
    writeDistribution(os, s.depDist[1]);
}

void
writeQBlock(std::ostream &os, const QBlockStats &qb)
{
    os << qb.occurrences << ' ' << qb.branch.count << ' '
       << qb.branch.taken << ' ' << qb.branch.redirect << ' '
       << qb.branch.mispredict << ' ' << qb.slots.size() << '\n';
    for (const SlotStats &s : qb.slots)
        writeSlot(os, s);
}

void
writeBody(const StatisticalProfile &profile, std::ostream &os)
{
    os << profile.order << ' ' << profile.instructions << ' '
       << profile.dynamicBlocks << '\n';
    os << profile.benchmark << '\n';

    os << profile.shapes.size() << '\n';
    for (const BlockShape &shape : profile.shapes) {
        os << shape.size();
        for (const SlotShape &s : shape) {
            os << ' ' << static_cast<int>(s.cls) << ' '
               << static_cast<int>(s.numSrcs) << ' ' << s.hasDest
               << ' ' << s.isLoad << ' ' << s.isStore << ' '
               << s.isCtrl;
        }
        os << '\n';
    }

    os << profile.nodes.size() << '\n';
    for (const auto &[gram, node] : profile.nodes) {
        os << gram.size();
        for (uint32_t g : gram)
            os << ' ' << g;
        os << ' ' << node.occurrences << ' ' << node.edges.size()
           << '\n';
        writeQBlock(os, node.entryStats);
        for (const auto &[next, edge] : node.edges) {
            os << next << ' ' << edge.count << '\n';
            writeQBlock(os, edge.stats);
        }
    }
}

// ---------------------------------------------------------------------
// Reading: a strict line-oriented parser with positional diagnostics.
// ---------------------------------------------------------------------

/**
 * Walks the payload line by line. Numeric fields are parsed with
 * std::from_chars, so negative numbers, "nan", hex noise, and partial
 * tokens are all rejected rather than coerced. Every diagnostic
 * carries the input name and the 1-based line number (the checksum
 * header is line 1, so payload lines start at 2).
 */
class LineParser
{
  public:
    LineParser(const std::string &text, std::string file)
        : text_(&text), file_(std::move(file))
    {
    }

    /** Advance to the next payload line; false at end of input. */
    bool
    nextLine()
    {
        if (pos_ >= text_->size())
            return false;
        ++lineNo_;
        lineStart_ = pos_;
        const size_t nl = text_->find('\n', pos_);
        lineEnd_ = nl == std::string::npos ? text_->size() : nl;
        pos_ = nl == std::string::npos ? text_->size() : nl + 1;
        cur_ = lineStart_;
        return true;
    }

    /** nextLine() that treats end-of-input as a corruption error. */
    void
    requireLine(const char *what)
    {
        if (!nextLine())
            fail(ErrorCategory::CorruptData,
                 std::string("unexpected end of profile while "
                             "reading ") + what);
    }

    /** Parse the next whitespace-separated unsigned field. */
    uint64_t
    u64(const char *field)
    {
        while (cur_ < lineEnd_ && (*text_)[cur_] == ' ')
            ++cur_;
        const size_t tokStart = cur_;
        while (cur_ < lineEnd_ && (*text_)[cur_] != ' ')
            ++cur_;
        if (tokStart == cur_)
            fail(ErrorCategory::ParseError,
                 std::string("missing field '") + field + "'");
        uint64_t value = 0;
        const char *first = text_->data() + tokStart;
        const char *last = text_->data() + cur_;
        const auto [ptr, ec] = std::from_chars(first, last, value, 10);
        if (ec != std::errc() || ptr != last)
            fail(ErrorCategory::ParseError,
                 std::string("field '") + field +
                 "': expected unsigned integer, got '" +
                 std::string(first, last) + "'");
        return value;
    }

    /** u64 with an inclusive upper bound (a semantic range check). */
    uint64_t
    u64Capped(const char *field, uint64_t max)
    {
        const uint64_t v = u64(field);
        if (v > max)
            fail(ErrorCategory::CorruptData,
                 std::string("field '") + field + "' = " +
                 std::to_string(v) + " exceeds maximum " +
                 std::to_string(max));
        return v;
    }

    /** A strict 0/1 flag. */
    bool
    boolean(const char *field)
    {
        return u64Capped(field, 1) != 0;
    }

    /** The untokenized remainder of the current line. */
    std::string
    rest() const
    {
        size_t start = cur_;
        while (start < lineEnd_ && (*text_)[start] == ' ')
            ++start;
        return text_->substr(start, lineEnd_ - start);
    }

    /** Assert the current line has no unconsumed tokens. */
    void
    endLine()
    {
        size_t p = cur_;
        while (p < lineEnd_ && (*text_)[p] == ' ')
            ++p;
        if (p != lineEnd_)
            fail(ErrorCategory::ParseError,
                 "trailing data on line: '" +
                 text_->substr(p, lineEnd_ - p) + "'");
    }

    /** True when only trailing whitespace remains in the payload. */
    bool
    atEnd() const
    {
        for (size_t p = pos_; p < text_->size(); ++p) {
            const char c = (*text_)[p];
            if (c != ' ' && c != '\n' && c != '\r' && c != '\t')
                return false;
        }
        return true;
    }

    uint64_t lineNo() const { return lineNo_; }

    [[noreturn]] void
    fail(ErrorCategory cat, const std::string &msg) const
    {
        throw Error(cat, msg, {file_, lineNo_});
    }

  private:
    const std::string *text_;
    std::string file_;
    uint64_t lineNo_ = 1;      ///< the checksum header is line 1
    size_t pos_ = 0;
    size_t lineStart_ = 0;
    size_t lineEnd_ = 0;
    size_t cur_ = 0;
};

/**
 * Distribution line: "n v1 c1 v2 c2 ...". Values must be strictly
 * ascending (the writer emits them sorted), bounded by @p maxValue,
 * with positive counts totalling at most @p maxTotal — together these
 * guarantee every sampled probability is well defined and in [0,1].
 */
DiscreteDistribution
readDistribution(LineParser &p, const char *what, uint64_t maxValue,
                 uint64_t maxTotal)
{
    p.requireLine(what);
    const uint64_t n = p.u64Capped("distribution entry count",
                                   maxTotal);
    DiscreteDistribution d;
    int64_t prev = -1;
    uint64_t total = 0;
    for (uint64_t i = 0; i < n; ++i) {
        const uint64_t value = p.u64Capped("dependency distance",
                                           maxValue);
        const uint64_t count = p.u64("distribution count");
        if (count == 0)
            p.fail(ErrorCategory::CorruptData,
                   "zero-count distribution entry");
        if (static_cast<int64_t>(value) <= prev)
            p.fail(ErrorCategory::CorruptData,
                   "distribution values not strictly ascending");
        prev = static_cast<int64_t>(value);
        total += count;
        if (total > maxTotal)
            p.fail(ErrorCategory::CorruptData,
                   "distribution total " + std::to_string(total) +
                   " exceeds block occurrences " +
                   std::to_string(maxTotal));
        d.record(static_cast<uint32_t>(value), count);
    }
    p.endLine();
    return d;
}

/**
 * Slot statistics: every event counter is bounded by its denominator
 * so the generator's derived probabilities stay in [0,1]: L1 events
 * by the block occurrences, L2/TLB events by the L1 accesses or
 * misses they are conditioned on.
 */
SlotStats
readSlot(LineParser &p, uint64_t occurrences)
{
    p.requireLine("slot statistics");
    SlotStats s;
    s.il1Access = p.u64Capped("il1Access", occurrences);
    s.il1Miss = p.u64Capped("il1Miss", s.il1Access);
    s.il2Miss = p.u64Capped("il2Miss", s.il1Miss);
    s.itlbMiss = p.u64Capped("itlbMiss", s.il1Access);
    s.dl1Miss = p.u64Capped("dl1Miss", occurrences);
    s.dl2Miss = p.u64Capped("dl2Miss", s.dl1Miss);
    s.dtlbMiss = p.u64Capped("dtlbMiss", occurrences);
    p.endLine();
    s.depDist[0] = readDistribution(p, "dependency distribution 0",
                                    MaxDependencyDistance, occurrences);
    s.depDist[1] = readDistribution(p, "dependency distribution 1",
                                    MaxDependencyDistance, occurrences);
    return s;
}

/**
 * Qualified-block statistics. Branch events are bounded by the branch
 * count, which is bounded by the block occurrences; mispredict and
 * redirect are disjoint outcomes so their sum must also fit.
 */
QBlockStats
readQBlock(LineParser &p, uint64_t maxSlots)
{
    p.requireLine("qualified-block statistics");
    QBlockStats qb;
    qb.occurrences = p.u64("occurrences");
    qb.branch.count = p.u64Capped("branch count", qb.occurrences);
    qb.branch.taken = p.u64Capped("branch taken", qb.branch.count);
    qb.branch.redirect = p.u64Capped("branch redirect",
                                     qb.branch.count);
    qb.branch.mispredict = p.u64Capped("branch mispredict",
                                       qb.branch.count);
    if (qb.branch.mispredict + qb.branch.redirect > qb.branch.count)
        p.fail(ErrorCategory::CorruptData,
               "mispredict + redirect exceeds branch count");
    const uint64_t nslots = p.u64Capped("slot count", maxSlots);
    p.endLine();
    qb.slots.reserve(nslots);
    for (uint64_t i = 0; i < nslots; ++i)
        qb.slots.push_back(readSlot(p, qb.occurrences));
    return qb;
}

StatisticalProfile
parseBody(const std::string &payload, const std::string &file)
{
    LineParser p(payload, file);
    StatisticalProfile profile;

    p.requireLine("profile header");
    // SFG order is bounded by the profiler (buildProfile rejects
    // orders above 8); anything larger here is corruption.
    profile.order = static_cast<int>(p.u64Capped("order", 8));
    profile.instructions = p.u64("instructions");
    profile.dynamicBlocks = p.u64("dynamicBlocks");
    p.endLine();

    p.requireLine("benchmark name");
    profile.benchmark = p.rest();

    // Element counts are bounded by the payload size: every element
    // needs at least one payload byte, so a larger count is corrupt
    // (and would otherwise drive an unbounded allocation).
    const uint64_t sizeCap = payload.size();

    p.requireLine("shape count");
    const uint64_t nshapes = p.u64Capped("shape count", sizeCap);
    p.endLine();
    profile.shapes.resize(nshapes);
    for (BlockShape &shape : profile.shapes) {
        p.requireLine("block shape");
        const uint64_t n = p.u64Capped("shape slot count", sizeCap);
        shape.resize(n);
        for (SlotShape &s : shape) {
            const uint64_t cls = p.u64Capped(
                "instruction class",
                static_cast<uint64_t>(isa::InstClass::NumClasses) - 1);
            s.cls = static_cast<isa::InstClass>(cls);
            // Dependency distributions exist for two source operands.
            s.numSrcs = static_cast<uint8_t>(
                p.u64Capped("source operand count", 2));
            s.hasDest = p.boolean("hasDest");
            s.isLoad = p.boolean("isLoad");
            s.isStore = p.boolean("isStore");
            s.isCtrl = p.boolean("isCtrl");
        }
        p.endLine();
    }

    p.requireLine("node count");
    const uint64_t nnodes = p.u64Capped("node count", sizeCap);
    p.endLine();
    if (nnodes > 0 && nshapes == 0)
        p.fail(ErrorCategory::CorruptData,
               "profile has SFG nodes but an empty shape table");
    const uint64_t gramLen =
        static_cast<uint64_t>(std::max(profile.order, 1));
    for (uint64_t i = 0; i < nnodes; ++i) {
        p.requireLine("SFG node");
        const uint64_t glen = p.u64("gram length");
        if (glen != gramLen)
            p.fail(ErrorCategory::CorruptData,
                   "gram length " + std::to_string(glen) +
                   " does not match SFG order (expected " +
                   std::to_string(gramLen) + ")");
        Gram gram(glen);
        for (uint32_t &g : gram) {
            g = static_cast<uint32_t>(p.u64Capped(
                "gram block id",
                nshapes > 0 ? nshapes - 1 : 0));
        }
        StatisticalProfile::Node node;
        node.occurrences = p.u64("node occurrences");
        if (node.occurrences == 0)
            p.fail(ErrorCategory::CorruptData,
                   "SFG node with zero occurrences");
        const uint64_t nedges = p.u64Capped("edge count",
                                            node.occurrences);
        if (profile.order == 0 && nedges != 0)
            p.fail(ErrorCategory::CorruptData,
                   "order-0 profile node has edges");
        p.endLine();

        const uint32_t blockId = StatisticalProfile::blockOf(gram);
        node.entryStats =
            readQBlock(p, profile.shapes[blockId].size());
        if (node.entryStats.occurrences > node.occurrences)
            p.fail(ErrorCategory::CorruptData,
                   "entry statistics occurrences exceed node "
                   "occurrences");

        uint64_t edgeTotal = 0;
        for (uint64_t e = 0; e < nedges; ++e) {
            p.requireLine("SFG edge");
            const uint32_t next = static_cast<uint32_t>(p.u64Capped(
                "edge target block",
                nshapes > 0 ? nshapes - 1 : 0));
            StatisticalProfile::Edge edge;
            edge.count = p.u64("edge traversal count");
            if (edge.count == 0)
                p.fail(ErrorCategory::CorruptData,
                       "SFG edge with zero traversals");
            p.endLine();
            // Each node occurrence takes at most one outgoing
            // transition, so edge counts can never sum past the
            // node's occurrences (edge probabilities sum to <= 1).
            edgeTotal += edge.count;
            if (edgeTotal > node.occurrences)
                p.fail(ErrorCategory::CorruptData,
                       "edge counts sum to " +
                       std::to_string(edgeTotal) +
                       ", exceeding node occurrences " +
                       std::to_string(node.occurrences));
            edge.stats = readQBlock(p, profile.shapes[next].size());
            if (!node.edges.emplace(next, std::move(edge)).second)
                p.fail(ErrorCategory::CorruptData,
                       "duplicate SFG edge to block " +
                       std::to_string(next));
        }
        if (!profile.nodes.emplace(std::move(gram),
                                   std::move(node)).second)
            p.fail(ErrorCategory::CorruptData, "duplicate SFG node");
    }

    if (!p.atEnd())
        p.fail(ErrorCategory::ParseError,
               "trailing data after final SFG node");
    return profile;
}

} // namespace

uint64_t
profileChecksum(const std::string &payload)
{
    return util::fnv1a64(payload);
}

uint64_t
profileDigest(const StatisticalProfile &profile)
{
    // The serialized payload is NOT canonical: writeBody() walks the
    // node unordered_map, so a built profile and its reloaded twin
    // serialize in different orders. Render each node (with its edges
    // sorted by next-block id) to its own string and sort the node
    // strings before hashing; everything else already has a fixed
    // order (DiscreteDistribution entries are sorted on insert).
    std::ostringstream head;
    head << profile.order << ' ' << profile.instructions << ' '
         << profile.dynamicBlocks << '\n';
    head << profile.benchmark << '\n';
    head << profile.shapes.size() << '\n';
    for (const BlockShape &shape : profile.shapes) {
        head << shape.size();
        for (const SlotShape &s : shape) {
            head << ' ' << static_cast<int>(s.cls) << ' '
                 << static_cast<int>(s.numSrcs) << ' ' << s.hasDest
                 << ' ' << s.isLoad << ' ' << s.isStore << ' '
                 << s.isCtrl;
        }
        head << '\n';
    }

    std::vector<std::string> nodeText;
    nodeText.reserve(profile.nodes.size());
    for (const auto &[gram, node] : profile.nodes) {
        std::ostringstream ns;
        ns << gram.size();
        for (uint32_t g : gram)
            ns << ' ' << g;
        ns << ' ' << node.occurrences << ' ' << node.edges.size()
           << '\n';
        writeQBlock(ns, node.entryStats);
        std::vector<uint32_t> nexts;
        nexts.reserve(node.edges.size());
        for (const auto &[next, edge] : node.edges)
            nexts.push_back(next);
        std::sort(nexts.begin(), nexts.end());
        for (uint32_t next : nexts) {
            const StatisticalProfile::Edge &edge =
                node.edges.at(next);
            ns << next << ' ' << edge.count << '\n';
            writeQBlock(ns, edge.stats);
        }
        nodeText.push_back(ns.str());
    }
    std::sort(nodeText.begin(), nodeText.end());

    std::string all = head.str();
    all += std::to_string(profile.nodes.size());
    all += '\n';
    for (const std::string &t : nodeText)
        all += t;
    return util::fnv1a64(all);
}

void
saveProfile(const StatisticalProfile &profile, std::ostream &os)
{
    std::ostringstream body;
    writeBody(profile, body);
    const std::string payload = body.str();

    char checksum[17];
    std::snprintf(checksum, sizeof(checksum), "%016llx",
                  static_cast<unsigned long long>(
                      profileChecksum(payload)));
    os << Magic << ' ' << ProfileFormatVersion << ' ' << checksum
       << ' ' << payload.size() << '\n';
    os << payload;
}

StatisticalProfile
loadProfile(std::istream &is, const std::string &file)
{
    std::string header;
    if (!std::getline(is, header))
        throw Error(ErrorCategory::IoError,
                    "cannot read profile header", {file, 1});

    const auto headerError = [&](ErrorCategory cat,
                                 const std::string &msg) {
        return Error(cat, msg, {file, 1});
    };
    const auto headerU64 = [&](const std::string &tok, int base,
                               const char *field) {
        uint64_t value = 0;
        const char *first = tok.data();
        const char *last = tok.data() + tok.size();
        const auto [ptr, ec] =
            std::from_chars(first, last, value, base);
        if (tok.empty() || ec != std::errc() || ptr != last)
            throw headerError(ErrorCategory::ParseError,
                              std::string("malformed profile header "
                                          "field '") + field +
                              "': '" + tok + "'");
        return value;
    };

    std::istringstream hs(header);
    std::string magic, versionTok, sumTok, bytesTok, extra;
    hs >> magic >> versionTok >> sumTok >> bytesTok;
    if (magic != Magic)
        throw headerError(ErrorCategory::ParseError,
                          "not a ssim profile (bad magic '" + magic +
                          "')");
    if (hs >> extra)
        throw headerError(ErrorCategory::ParseError,
                          "trailing data in profile header: '" +
                          extra + "'");
    const uint64_t version = headerU64(versionTok, 10,
                                       "format version");
    if (version != static_cast<uint64_t>(ProfileFormatVersion))
        throw headerError(ErrorCategory::VersionMismatch,
                          "unsupported profile version " +
                          std::to_string(version) +
                          " (this build reads version " +
                          std::to_string(ProfileFormatVersion) + ")");
    if (sumTok.size() != 16)
        throw headerError(ErrorCategory::ParseError,
                          "malformed profile checksum '" + sumTok +
                          "'");
    const uint64_t declaredSum = headerU64(sumTok, 16, "checksum");
    const uint64_t declaredBytes = headerU64(bytesTok, 10,
                                             "payload byte count");

    std::string payload{std::istreambuf_iterator<char>(is),
                        std::istreambuf_iterator<char>()};
    if (payload.size() != declaredBytes)
        throw Error(ErrorCategory::CorruptData,
                    "payload truncated or padded: header declares " +
                    std::to_string(declaredBytes) + " bytes, found " +
                    std::to_string(payload.size()), {file, 1});
    const uint64_t actualSum = profileChecksum(payload);
    if (actualSum != declaredSum) {
        char buf[17];
        std::snprintf(buf, sizeof(buf), "%016llx",
                      static_cast<unsigned long long>(actualSum));
        throw Error(ErrorCategory::CorruptData,
                    "payload checksum mismatch: header declares " +
                    sumTok + ", payload hashes to " + buf, {file, 1});
    }

    return parseBody(payload, file);
}

Expected<StatisticalProfile>
tryLoadProfile(std::istream &is, const std::string &file)
{
    return tryInvoke([&] { return loadProfile(is, file); });
}

void
saveProfileFile(const StatisticalProfile &profile,
                const std::string &path)
{
    // Atomic replace (tmp + rename): an interrupted save can never
    // leave a truncated profile at @p path — readers see either the
    // previous complete profile or the new one. The header checksum
    // still guards against everything else (bit rot, bad copies).
    Expected<void> written = util::atomicWriteFile(
        path, [&](std::ostream &os) { saveProfile(profile, os); });
    if (!written)
        throw written.error();
}

StatisticalProfile
loadProfileFile(const std::string &path)
{
    std::ifstream is(path);
    if (!is)
        throw Error(ErrorCategory::IoError,
                    "cannot open for reading", {path, 0});
    return loadProfile(is, path);
}

Expected<void>
trySaveProfileFile(const StatisticalProfile &profile,
                   const std::string &path)
{
    return tryInvoke([&] { saveProfileFile(profile, path); });
}

Expected<StatisticalProfile>
tryLoadProfileFile(const std::string &path)
{
    return tryInvoke([&] { return loadProfileFile(path); });
}

} // namespace ssim::core
