#include "serialize.hh"

#include <fstream>
#include <istream>
#include <ostream>
#include <sstream>

#include "util/logging.hh"

namespace ssim::core
{

namespace
{

constexpr const char *Magic = "ssim-profile";
constexpr int Version = 1;

void
writeDistribution(std::ostream &os, const DiscreteDistribution &d)
{
    const auto &entries = d.entries();
    os << entries.size();
    for (const auto &[value, count] : entries)
        os << ' ' << value << ' ' << count;
    os << '\n';
}

DiscreteDistribution
readDistribution(std::istream &is)
{
    size_t n = 0;
    is >> n;
    DiscreteDistribution d;
    for (size_t i = 0; i < n; ++i) {
        uint32_t value;
        uint64_t count;
        is >> value >> count;
        d.record(value, count);
    }
    return d;
}

void
writeSlot(std::ostream &os, const SlotStats &s)
{
    os << s.il1Access << ' ' << s.il1Miss << ' ' << s.il2Miss << ' '
       << s.itlbMiss << ' ' << s.dl1Miss << ' ' << s.dl2Miss << ' '
       << s.dtlbMiss << '\n';
    writeDistribution(os, s.depDist[0]);
    writeDistribution(os, s.depDist[1]);
}

SlotStats
readSlot(std::istream &is)
{
    SlotStats s;
    is >> s.il1Access >> s.il1Miss >> s.il2Miss >> s.itlbMiss >>
        s.dl1Miss >> s.dl2Miss >> s.dtlbMiss;
    s.depDist[0] = readDistribution(is);
    s.depDist[1] = readDistribution(is);
    return s;
}

void
writeQBlock(std::ostream &os, const QBlockStats &qb)
{
    os << qb.occurrences << ' ' << qb.branch.count << ' '
       << qb.branch.taken << ' ' << qb.branch.redirect << ' '
       << qb.branch.mispredict << ' ' << qb.slots.size() << '\n';
    for (const SlotStats &s : qb.slots)
        writeSlot(os, s);
}

QBlockStats
readQBlock(std::istream &is)
{
    QBlockStats qb;
    size_t nslots = 0;
    is >> qb.occurrences >> qb.branch.count >> qb.branch.taken >>
        qb.branch.redirect >> qb.branch.mispredict >> nslots;
    qb.slots.reserve(nslots);
    for (size_t i = 0; i < nslots; ++i)
        qb.slots.push_back(readSlot(is));
    return qb;
}

} // namespace

void
saveProfile(const StatisticalProfile &profile, std::ostream &os)
{
    os << Magic << ' ' << Version << '\n';
    os << profile.order << ' ' << profile.instructions << ' '
       << profile.dynamicBlocks << '\n';
    os << profile.benchmark << '\n';

    os << profile.shapes.size() << '\n';
    for (const BlockShape &shape : profile.shapes) {
        os << shape.size();
        for (const SlotShape &s : shape) {
            os << ' ' << static_cast<int>(s.cls) << ' '
               << static_cast<int>(s.numSrcs) << ' ' << s.hasDest
               << ' ' << s.isLoad << ' ' << s.isStore << ' '
               << s.isCtrl;
        }
        os << '\n';
    }

    os << profile.nodes.size() << '\n';
    for (const auto &[gram, node] : profile.nodes) {
        os << gram.size();
        for (uint32_t g : gram)
            os << ' ' << g;
        os << ' ' << node.occurrences << ' ' << node.edges.size()
           << '\n';
        writeQBlock(os, node.entryStats);
        for (const auto &[next, edge] : node.edges) {
            os << next << ' ' << edge.count << '\n';
            writeQBlock(os, edge.stats);
        }
    }
}

StatisticalProfile
loadProfile(std::istream &is)
{
    std::string magic;
    int version = 0;
    is >> magic >> version;
    fatalIf(magic != Magic, "not a ssim profile");
    fatalIf(version != Version, "unsupported profile version " +
            std::to_string(version));

    StatisticalProfile profile;
    is >> profile.order >> profile.instructions >>
        profile.dynamicBlocks;
    is >> std::ws;
    std::getline(is, profile.benchmark);

    size_t nshapes = 0;
    is >> nshapes;
    profile.shapes.resize(nshapes);
    for (BlockShape &shape : profile.shapes) {
        size_t n = 0;
        is >> n;
        shape.resize(n);
        for (SlotShape &s : shape) {
            int cls, numSrcs;
            is >> cls >> numSrcs >> s.hasDest >> s.isLoad >>
                s.isStore >> s.isCtrl;
            s.cls = static_cast<isa::InstClass>(cls);
            s.numSrcs = static_cast<uint8_t>(numSrcs);
        }
    }

    size_t nnodes = 0;
    is >> nnodes;
    for (size_t i = 0; i < nnodes; ++i) {
        size_t gramLen = 0;
        is >> gramLen;
        Gram gram(gramLen);
        for (uint32_t &g : gram)
            is >> g;
        StatisticalProfile::Node node;
        size_t nedges = 0;
        is >> node.occurrences >> nedges;
        node.entryStats = readQBlock(is);
        for (size_t e = 0; e < nedges; ++e) {
            uint32_t next = 0;
            StatisticalProfile::Edge edge;
            is >> next >> edge.count;
            edge.stats = readQBlock(is);
            node.edges.emplace(next, std::move(edge));
        }
        profile.nodes.emplace(std::move(gram), std::move(node));
    }
    fatalIf(!is, "truncated or malformed profile");
    return profile;
}

void
saveProfileFile(const StatisticalProfile &profile,
                const std::string &path)
{
    std::ofstream os(path);
    fatalIf(!os, "cannot write profile to " + path);
    saveProfile(profile, os);
    fatalIf(!os, "write error on " + path);
}

StatisticalProfile
loadProfileFile(const std::string &path)
{
    std::ifstream is(path);
    fatalIf(!is, "cannot read profile from " + path);
    return loadProfile(is);
}

} // namespace ssim::core
