#include "report.hh"

#include "power/power_model.hh"
#include "util/statistics.hh"
#include "util/table.hh"

namespace ssim::core
{

void
printSummary(std::ostream &os, const std::string &label,
             const SimResult &res)
{
    printBanner(os, label + ": summary");
    TextTable t;
    t.setHeader({"metric", "value"});
    t.addRow({"IPC", TextTable::num(res.ipc)});
    t.addRow({"EPC (W)", TextTable::num(res.epc, 2)});
    t.addRow({"EDP", TextTable::num(res.edp, 2)});
    t.addRow({"cycles", std::to_string(res.stats.cycles)});
    t.addRow({"instructions committed",
              std::to_string(res.stats.committed)});
    t.addRow({"branches", std::to_string(res.stats.branches)});
    t.addRow({"taken rate", res.stats.branches
        ? TextTable::pct(static_cast<double>(
              res.stats.takenBranches) / res.stats.branches)
        : "-"});
    t.addRow({"mispredicts / 1K insts",
              TextTable::num(res.stats.mispredictsPerKilo(), 2)});
    t.addRow({"fetch redirects", std::to_string(
        res.stats.fetchRedirects)});
    t.addRow({"loads", std::to_string(res.stats.loads)});
    t.addRow({"stores", std::to_string(res.stats.stores)});
    t.print(os);
}

void
printPipelineReport(std::ostream &os, const SimResult &res,
                    const cpu::CoreConfig &cfg)
{
    printBanner(os, "pipeline activity");
    const double cycles =
        std::max<double>(1.0, static_cast<double>(res.stats.cycles));
    TextTable t;
    t.setHeader({"stage/structure", "per cycle", "capacity",
                 "utilisation"});
    auto row = [&](const char *name, double perCycle, double cap) {
        t.addRow({name, TextTable::num(perCycle, 2),
                  TextTable::num(cap, 0),
                  TextTable::pct(perCycle / cap)});
    };
    row("fetch", res.stats.fetched / cycles,
        static_cast<double>(cfg.decodeWidth * cfg.fetchSpeed));
    row("dispatch", res.stats.dispatched / cycles,
        static_cast<double>(cfg.decodeWidth));
    row("issue", res.stats.issued / cycles,
        static_cast<double>(cfg.issueWidth));
    row("commit", res.stats.committed / cycles,
        static_cast<double>(cfg.commitWidth));
    row("IFQ occupancy", res.stats.avgIfqOccupancy(),
        static_cast<double>(cfg.ifqSize));
    row("RUU occupancy", res.stats.avgRuuOccupancy(),
        static_cast<double>(cfg.ruuSize));
    row("LSQ occupancy", res.stats.avgLsqOccupancy(),
        static_cast<double>(cfg.lsqSize));
    t.print(os);

    printBanner(os, "stall causes (zero-progress cycles per stage)");
    TextTable s;
    s.setHeader({"cause", "cycles", "of total"});
    for (int i = 0; i < cpu::NumStallCauses; ++i) {
        const uint64_t n = res.stats.stallCycles[i];
        if (n == 0)
            continue;
        s.addRow({cpu::stallCauseName(static_cast<cpu::StallCause>(i)),
                  std::to_string(n),
                  TextTable::pct(static_cast<double>(n) / cycles)});
    }
    s.print(os);
}

void
printPowerReport(std::ostream &os, const SimResult &res,
                 const cpu::CoreConfig &cfg)
{
    printBanner(os, "power breakdown (cc3 conditional clocking)");
    const power::PowerModel model(cfg);
    TextTable t;
    t.setHeader({"unit", "avg (W)", "peak (W)", "share"});
    for (int u = 0; u < cpu::NumPowerUnits; ++u) {
        const auto unit = static_cast<cpu::PowerUnit>(u);
        t.addRow({cpu::powerUnitName(unit),
                  TextTable::num(res.power.unitAvg[u], 2),
                  TextTable::num(model.maxPowerOf(unit), 2),
                  TextTable::pct(res.power.unitAvg[u] /
                                 std::max(res.power.total, 1e-9))});
    }
    t.addRow({"clock", TextTable::num(res.power.clockAvg, 2), "-",
              TextTable::pct(res.power.clockAvg /
                             std::max(res.power.total, 1e-9))});
    t.addRow({"total", TextTable::num(res.power.total, 2),
              TextTable::num(model.peakPower(), 2), "100.0%"});
    t.print(os);
}

void
printFullReport(std::ostream &os, const std::string &label,
                const SimResult &res, const cpu::CoreConfig &cfg)
{
    printSummary(os, label, res);
    printPipelineReport(os, res, cfg);
    printPowerReport(os, res, cfg);
}

void
printComparison(std::ostream &os, const SimResult &predicted,
                const SimResult &reference)
{
    printBanner(os, "prediction vs reference");
    TextTable t;
    t.setHeader({"metric", "predicted", "reference", "abs error"});
    auto row = [&](const char *name, double a, double b,
                   int precision = 3) {
        t.addRow({name, TextTable::num(a, precision),
                  TextTable::num(b, precision),
                  TextTable::pct(absoluteError(a, b))});
    };
    row("IPC", predicted.ipc, reference.ipc);
    row("EPC (W)", predicted.epc, reference.epc, 2);
    row("EDP", predicted.edp, reference.edp, 2);
    row("mispredicts/1K", predicted.stats.mispredictsPerKilo(),
        reference.stats.mispredictsPerKilo(), 2);
    row("RUU occupancy", predicted.stats.avgRuuOccupancy(),
        reference.stats.avgRuuOccupancy(), 1);
    row("IFQ occupancy", predicted.stats.avgIfqOccupancy(),
        reference.stats.avgIfqOccupancy(), 1);
    t.print(os);
}

} // namespace ssim::core
