/**
 * @file
 * Parallel ensemble simulation: N seeds × M configurations simulated
 * concurrently over shared, immutable GenModel state (section 4.1's
 * multi-seed averages and section 4.6's design-space fleets are the
 * motivating shapes).
 *
 * Determinism contract: each task is an independent, deterministic
 * (model, config, seed) simulation, and results land in a result
 * vector indexed by task order — never by completion order — so
 * runEnsemble() is bit-identical (memcmp on each SimStats) to the
 * equivalent serial loop, at any thread count, enforced by test.
 *
 * Scheduling is a single atomic task index over an internal
 * std::thread pool: no queue mutation, no work stealing, nothing for
 * thread interleaving to perturb.
 */

#ifndef SSIM_CORE_ENSEMBLE_HH
#define SSIM_CORE_ENSEMBLE_HH

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "cpu/config.hh"
#include "gen_model.hh"
#include "statsim.hh"
#include "util/error.hh"

namespace ssim::core
{

/** One ensemble member: walk @p model with @p seed, simulate on @p cfg. */
struct EnsembleJob
{
    std::shared_ptr<const GenModel> model;
    cpu::CoreConfig cfg;
    uint64_t seed = 1;
};

struct EnsembleOptions
{
    /** Worker threads; 0 = std::thread::hardware_concurrency(). */
    unsigned jobs = 0;
};

/** Pool observations; published as core.ensemble.* (obs registry). */
struct EnsembleStats
{
    unsigned threads = 0;   ///< workers actually used
    uint64_t tasks = 0;     ///< ensemble members executed
    uint64_t queuePeak = 0; ///< max tasks pending at once (all up front)
};

/**
 * Run every job, in parallel, results merged in job order. A job that
 * fails validation comes back as a failed Expected carrying the typed
 * error (same contract as the harness try* wrappers); non-ssim
 * exceptions propagate — they are bugs, not inputs.
 */
std::vector<Expected<SimResult>>
runEnsembleExpected(const std::vector<EnsembleJob> &jobs,
                    const EnsembleOptions &opts = {},
                    EnsembleStats *stats = nullptr);

/**
 * Strict variant: the results in job order, or the first (in job
 * order, not completion order) failure rethrown.
 */
std::vector<SimResult>
runEnsemble(const std::vector<EnsembleJob> &jobs,
            const EnsembleOptions &opts = {},
            EnsembleStats *stats = nullptr);

/**
 * Convenience: one model, one configuration, many seeds (the §4.1 CoV
 * shape). seeds[i] produces results[i].
 */
std::vector<SimResult>
runSeedEnsemble(const std::shared_ptr<const GenModel> &model,
                const cpu::CoreConfig &cfg,
                const std::vector<uint64_t> &seeds,
                const EnsembleOptions &opts = {},
                EnsembleStats *stats = nullptr);

/**
 * Publish pool counters under `<prefix>.{threads,tasks,queue_peak}`.
 * Kept out of SimStats on purpose: SimStats stays memcmp-comparable
 * across serial/parallel runs (same discipline as core.sched.*).
 */
void publishEnsembleStats(obs::Registry &registry,
                          const std::string &prefix,
                          const EnsembleStats &stats);

} // namespace ssim::core

#endif // SSIM_CORE_ENSEMBLE_HH
