/**
 * @file
 * The statistical profile (step 1 of Figure 1): a statistical flow
 * graph of order k plus, per *qualified basic block* (a basic block
 * together with its history of k preceding blocks, i.e. an edge of the
 * k-SFG), the microarchitecture-independent characteristics
 * (instruction types, operand counts, dependency-distance
 * distributions) and the microarchitecture-dependent locality
 * characteristics (branch and cache probabilities, section 2.1.2).
 *
 * Node layout: a node is keyed by the gram of the k most recent basic
 * blocks (k >= 1); an edge is labelled with the next block and carries
 * the (k+1)-gram statistics the paper writes as
 * Prob[. | B_n, B_{n-1} ... B_{n-k}]. Each node additionally keeps
 * "entry" statistics conditioned on its own k-gram, used when the
 * generation algorithm (re)starts a walk at that node (step 1/2).
 * k = 0 degenerates to per-block statistics with no edges.
 */

#ifndef SSIM_CORE_PROFILE_HH
#define SSIM_CORE_PROFILE_HH

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "isa/isa.hh"
#include "isa/program.hh"
#include "util/distribution.hh"

namespace ssim::core
{

/** Dependency distances are capped here (section 2.1.1). */
constexpr uint32_t MaxDependencyDistance = 512;

/** Basic-block history gram (most recent block last). */
using Gram = std::vector<uint32_t>;

/** FNV-1a hash over the gram contents. */
struct GramHash
{
    size_t
    operator()(const Gram &g) const
    {
        uint64_t h = 1469598103934665603ULL;
        for (uint32_t v : g) {
            h ^= v;
            h *= 1099511628211ULL;
        }
        return static_cast<size_t>(h);
    }
};

/** Static shape of one instruction slot within a basic block. */
struct SlotShape
{
    isa::InstClass cls = isa::InstClass::IntAlu;
    uint8_t numSrcs = 0;
    bool hasDest = false;
    bool isLoad = false;
    bool isStore = false;
    bool isCtrl = false;
};

/** Static shape of one basic block (instruction classes, operands). */
using BlockShape = std::vector<SlotShape>;

/** Per-slot dynamic statistics of a qualified basic block. */
struct SlotStats
{
    /**
     * RAW dependency distance per source operand; value 0 encodes
     * "no producer", other values are capped at MaxDependencyDistance.
     */
    DiscreteDistribution depDist[2];

    // I-side locality events (denominator: QB occurrences; the L1
    // access only happens on a fetch-line change, L2 events are
    // conditional on an L1 miss).
    uint64_t il1Access = 0;
    uint64_t il1Miss = 0;
    uint64_t il2Miss = 0;
    uint64_t itlbMiss = 0;

    // D-side locality events for loads (denominator: occurrences;
    // L2 events conditional on an L1 miss).
    uint64_t dl1Miss = 0;
    uint64_t dl2Miss = 0;
    uint64_t dtlbMiss = 0;
};

/** Terminal-branch statistics of a qualified basic block. */
struct BranchStats
{
    uint64_t count = 0;       ///< recorded branch events
    uint64_t taken = 0;
    uint64_t redirect = 0;    ///< BTB-miss fetch redirections
    uint64_t mispredict = 0;
};

/** All statistics attached to one qualified basic block. */
struct QBlockStats
{
    uint64_t occurrences = 0;
    std::vector<SlotStats> slots;
    BranchStats branch;

    /** Make sure the slot vector covers @p n instructions. */
    void ensureSlots(size_t n)
    {
        if (slots.size() < n)
            slots.resize(n);
    }
};

/** The complete statistical profile of one program execution. */
class StatisticalProfile
{
  public:
    /** Outgoing SFG edge: next block plus (k+1)-gram statistics. */
    struct Edge
    {
        uint64_t count = 0;
        QBlockStats stats;
    };

    /** SFG node: a k-gram of basic blocks. */
    struct Node
    {
        uint64_t occurrences = 0;
        QBlockStats entryStats;   ///< k-gram marginal statistics
        std::unordered_map<uint32_t, Edge> edges;  ///< by next block
    };

    int order = 1;                     ///< the k of the SFG
    std::string benchmark;
    uint64_t instructions = 0;         ///< profiled dynamic instructions
    uint64_t dynamicBlocks = 0;
    std::vector<BlockShape> shapes;    ///< per static block

    std::unordered_map<Gram, Node, GramHash> nodes;

    /** Number of SFG nodes (distinct k-grams; k = 0: blocks). */
    size_t nodeCount() const { return nodes.size(); }

    /**
     * Number of distinct qualified basic blocks, i.e. distinct
     * (k+1)-grams — the statistic Table 3 reports. For k = 0 this is
     * the number of distinct blocks.
     */
    size_t qualifiedBlockCount() const;

    /** Aggregate branch-event totals over the whole profile. */
    BranchStats totalBranchStats() const;

    /** Profiled branch mispredictions per 1000 instructions (Fig 3). */
    double mispredictsPerKilo() const;

    /** Current block of a node gram (its last element). */
    static uint32_t blockOf(const Gram &g) { return g.back(); }
};

/**
 * Incrementally builds the SFG of a profile from the dynamic basic
 * block stream. Factored out of the profiler so the graph
 * construction is directly testable against the paper's Figure 2
 * example ('AABAABCABC').
 */
class SfgBuilder
{
  public:
    /** Statistics targets for the block that just started. */
    struct BlockStats
    {
        QBlockStats *node = nullptr;  ///< k-gram entry statistics
        QBlockStats *edge = nullptr;  ///< (k+1)-gram edge statistics
    };

    explicit SfgBuilder(StatisticalProfile &profile);

    /**
     * Record that the dynamic stream entered @p blockId (whose shape
     * has @p blockLen instructions). Returns the node/edge statistics
     * the caller should accumulate the block's events into; both are
     * null while the history is still warming up (the first k-1
     * blocks), and edge is null for k = 0.
     */
    BlockStats startBlock(uint32_t blockId, size_t blockLen);

  private:
    StatisticalProfile *profile_;
    size_t gramSize_;
    bool useEdges_;
    Gram history_;
    Gram prevGram_;
};

} // namespace ssim::core

#endif // SSIM_CORE_PROFILE_HH
