/**
 * @file
 * Human-readable reports for simulation results: the headline
 * metrics, the pipeline activity summary, and the per-unit power
 * breakdown (Wattch-style tabulation). Used by the CLI's --report
 * flag and handy for debugging accuracy deltas between the
 * statistical and execution-driven simulators.
 */

#ifndef SSIM_CORE_REPORT_HH
#define SSIM_CORE_REPORT_HH

#include <ostream>

#include "cpu/config.hh"
#include "statsim.hh"

namespace ssim::core
{

/** Print headline metrics (IPC/EPC/EDP, cycles, event rates). */
void printSummary(std::ostream &os, const std::string &label,
                  const SimResult &res);

/** Print fetch/dispatch/issue/commit bandwidth and occupancies. */
void printPipelineReport(std::ostream &os, const SimResult &res,
                         const cpu::CoreConfig &cfg);

/** Print the per-unit average power breakdown with peak budgets. */
void printPowerReport(std::ostream &os, const SimResult &res,
                      const cpu::CoreConfig &cfg);

/** All three reports. */
void printFullReport(std::ostream &os, const std::string &label,
                     const SimResult &res, const cpu::CoreConfig &cfg);

/** Side-by-side comparison of two runs with absolute errors. */
void printComparison(std::ostream &os, const SimResult &predicted,
                     const SimResult &reference);

} // namespace ssim::core

#endif // SSIM_CORE_REPORT_HH
