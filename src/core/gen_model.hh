/**
 * @file
 * Immutable, thread-shareable generation model: the reduced SFG, the
 * frozen Walker/Vose alias tables and the per-slot EmissionPlans that
 * the section 2.2 random walk consumes — everything about generation
 * that does NOT depend on the seed.
 *
 * A GenModel is a pure function of (profile content, GenerationOptions
 * minus seed). Building one is the expensive part of synthetic trace
 * generation (graph reduction + alias-table freezing); walking one is
 * cheap. Splitting the two lets N seeds, M sweep points and concurrent
 * serve requests share a single build:
 *
 *     profile --build once--> GenModel --walk per seed--> trace(s)
 *
 * Immutability contract: after the constructor returns, a GenModel is
 * never written again — every member is logically const, dependency
 * distributions are *copied* out of the profile and prepared inside
 * the model (the shared StatisticalProfile is never mutated, not even
 * through `mutable` lazy-freeze members), and all interior pointers
 * target model-owned storage. That is what makes handing one
 * `shared_ptr<const GenModel>` to many simulation threads sound.
 *
 * GenModelCache keys models by profile content digest + the
 * seed-independent generation knobs, with per-key build latches:
 * concurrent requesters of the same model block only on that key;
 * distinct keys build in parallel (util::KeyedOnceCache).
 */

#ifndef SSIM_CORE_GEN_MODEL_HH
#define SSIM_CORE_GEN_MODEL_HH

#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "profile.hh"
#include "synth_trace.hh"
#include "util/distribution.hh"
#include "util/keyed_once.hh"

namespace ssim::obs
{
class Registry;
}

namespace ssim::core
{

/** Generation controls. */
struct GenerationOptions
{
    /**
     * Trace reduction factor R: node occurrences are divided by R and
     * zero-occurrence nodes removed (typical paper values: 1e3..1e5;
     * pick R so the synthetic trace has 1e5..1e6 instructions).
     */
    uint64_t reductionFactor = 1000;

    /** Random seed (each seed yields an independent trace). */
    uint64_t seed = 1;

    /**
     * Maximum resampling attempts when a drawn dependency lands on an
     * instruction without a destination register (step 4; the paper
     * uses 1000, after which the dependency is dropped).
     */
    uint32_t maxDependencyRetries = 1000;

    /**
     * @throws ssim::Error (InvalidConfig) for knobs the generation
     *         walk cannot honour (reduction factor 0, zero dependency
     *         retries).
     */
    void validate() const;
};

/** Counters the generator accumulates; published via core::ObsSink. */
struct GeneratorMetrics
{
    uint64_t emitted = 0;          ///< instructions produced so far
    uint64_t blocks = 0;           ///< basic-block instances emitted
    uint64_t startPicks = 0;       ///< step-1 start-node draws
    uint64_t walkRestarts = 0;     ///< dead ends + exhausted targets
    uint64_t depRetries = 0;       ///< step-4 resampling attempts
    uint64_t depSquashes = 0;      ///< dependencies dropped after retry
    uint64_t aliasTables = 0;      ///< alias tables frozen at build
    double buildSeconds = 0.0;     ///< reduced-graph + table build time
};

/** The seed-independent half of a StreamingGenerator. */
class GenModel
{
  public:
    /** Precomputed per-slot emission constants (no hot-path divides). */
    struct SlotPlan
    {
        SynthInst proto;         ///< static fields pre-filled
        const DiscreteDistribution *dep[2] = {nullptr, nullptr};
        double pIl1Access = 0.0;
        double pIl1Miss = 0.0;   ///< conditioned on an L1 access
        double pIl2Miss = 0.0;   ///< conditioned on an L1 miss
        double pItlbMiss = 0.0;  ///< conditioned on an L1 access
        double pDl1Miss = 0.0;
        double pDl2Miss = 0.0;   ///< conditioned on an L1 miss
        double pDtlbMiss = 0.0;
        bool hasStats = false;   ///< profiled slot statistics exist
    };

    /** One qualified block's emission recipe (entry or edge stats). */
    struct EmissionPlan
    {
        std::vector<SlotPlan> slots;
        double pTaken = 0.0;
        double pMispredict = 0.0;
        double pMisOrRedirect = 0.0;
        bool hasBranchStats = false;
    };

    /** One node of the reduced statistical flow graph. */
    struct ReducedNode
    {
        uint32_t blockId = 0;
        const EmissionPlan *entryPlan = nullptr;

        struct ReducedEdge
        {
            uint32_t destNode = 0;
            const EmissionPlan *plan = nullptr;
        };
        std::vector<ReducedEdge> edges;
        AliasTable edgeSampler;
    };

    /**
     * Build the model: reduce the SFG by opts.reductionFactor and
     * freeze every emission plan and alias table. opts.seed is
     * ignored — it belongs to the per-run cursor. The profile is read
     * during construction only; the finished model holds no reference
     * to it.
     * @throws ssim::Error (InvalidConfig) via opts.validate().
     */
    GenModel(const StatisticalProfile &profile,
             const GenerationOptions &opts);

    // Interior pointers (plans, dep distributions) make the model
    // address-pinned.
    GenModel(const GenModel &) = delete;
    GenModel &operator=(const GenModel &) = delete;

    const std::vector<ReducedNode> &nodes() const { return nodes_; }

    /** Reduced per-node occurrence budget (Fenwick seed per run). */
    const std::vector<uint64_t> &occurrences() const
    {
        return occurrences_;
    }

    /** Expected trace length (profile instructions / R). */
    uint64_t target() const { return target_; }

    /** Longest basic block (ring-sizing headroom). */
    uint64_t maxBlockLen() const { return maxBlockLen_; }

    const std::string &benchmark() const { return benchmark_; }
    uint64_t reductionFactor() const { return reductionFactor_; }
    uint32_t maxDependencyRetries() const
    {
        return maxDependencyRetries_;
    }

    /** Alias tables frozen at build (deterministic counter). */
    uint64_t aliasTables() const { return aliasTables_; }

    /** Wall-clock build time (trace-exporter observation only). */
    double buildSeconds() const { return buildSeconds_; }

  private:
    void build(const StatisticalProfile &profile);
    const EmissionPlan *makePlan(const StatisticalProfile &profile,
                                 uint32_t blockId,
                                 const QBlockStats &stats);

    uint64_t reductionFactor_;
    uint32_t maxDependencyRetries_;
    std::string benchmark_;

    std::vector<ReducedNode> nodes_;
    std::deque<EmissionPlan> plans_;         ///< stable storage
    std::deque<DiscreteDistribution> deps_;  ///< owned prepared copies
    std::vector<uint64_t> occurrences_;

    uint64_t target_ = 1;
    uint64_t maxBlockLen_ = 0;
    uint64_t aliasTables_ = 0;
    double buildSeconds_ = 0.0;
};

/** Cache counters, published as core.gen.model_cache.* (obs). */
struct GenModelCacheStats
{
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t evictions = 0;
};

/**
 * Process-wide content-keyed GenModel cache. The key is
 * (profileDigest(profile), reductionFactor, maxDependencyRetries) —
 * profile *content*, so two identically-built profiles share a model
 * regardless of object identity. Digests are memoized per live
 * profile object, so repeated lookups with the same shared profile
 * (a sweep's point loop) hash the profile once, not per point.
 *
 * Disable with SSIM_GEN_MODEL_CACHE=0 (every call builds a private
 * model); results are bit-identical either way — the cache only
 * de-duplicates work.
 */
class GenModelCache
{
  public:
    /** Completed models kept (LRU); in-flight builds never evicted. */
    static constexpr size_t DefaultCapacity = 32;

    static GenModelCache &instance();

    /**
     * The model for (profile content, opts minus seed): cached build,
     * per-key latched. Blocks only when another thread is building
     * this exact key.
     */
    std::shared_ptr<const GenModel>
    get(const std::shared_ptr<const StatisticalProfile> &profile,
        const GenerationOptions &opts);

    GenModelCacheStats stats() const;
    void clear();
    void setCapacity(size_t capacity);

    /** SSIM_GEN_MODEL_CACHE: unset or nonzero = on, 0 = off. */
    static bool enabled();

  private:
    GenModelCache() = default;

    struct Key
    {
        uint64_t digest = 0;
        uint64_t reduction = 0;
        uint32_t retries = 0;

        bool
        operator<(const Key &o) const
        {
            if (digest != o.digest)
                return digest < o.digest;
            if (reduction != o.reduction)
                return reduction < o.reduction;
            return retries < o.retries;
        }
    };

    uint64_t
    digestFor(const std::shared_ptr<const StatisticalProfile> &profile);

    mutable std::mutex digestMu_;
    struct DigestEntry
    {
        std::weak_ptr<const StatisticalProfile> owner;
        uint64_t digest = 0;
    };
    std::map<const StatisticalProfile *, DigestEntry> digests_;

    util::KeyedOnceCache<Key, GenModel> cache_{DefaultCapacity};
};

/**
 * Publish the cache counters under `<prefix>.{hits,misses,evictions}`
 * (satellite of the --stats-json contract: these live in the obs
 * registry, never in SimStats, so the memcmp equivalence contract
 * stays honest).
 */
void publishModelCacheStats(obs::Registry &registry,
                            const std::string &prefix);

} // namespace ssim::core

#endif // SSIM_CORE_GEN_MODEL_HH
