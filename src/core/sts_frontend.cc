#include "sts_frontend.hh"

#include <algorithm>

#include "util/error.hh"

namespace ssim::core
{

using cpu::BranchOutcome;
using cpu::DispatchAction;
using cpu::DynInst;
using cpu::MemEvent;
using cpu::PowerUnit;
using cpu::SimStats;

namespace
{

const SyntheticTrace &
emptyTrace()
{
    static const SyntheticTrace t;
    return t;
}

} // namespace

uint64_t
requiredStreamLookback(const cpu::CoreConfig &cfg)
{
    // A wrong-path squash rewinds the fetch cursor to just past the
    // mispredicted branch. Between the branch's fetch and its
    // resolution, fetch can have advanced by at most everything the
    // machine holds in flight (IFQ + RUU; the LSQ shares RUU entries)
    // plus one fetch burst.
    return uint64_t{cfg.ifqSize} + cfg.ruuSize + cfg.lsqSize +
        uint64_t{cfg.decodeWidth} * std::max<uint32_t>(
            1, cfg.fetchSpeed) + 64;
}

StsFrontend::StsFrontend(const SyntheticTrace &trace,
                         const cpu::CoreConfig &cfg)
    : owned_(trace), src_(&owned_), cfg_(cfg)
{
    init();
}

StsFrontend::StsFrontend(SynthInstSource &source,
                         const cpu::CoreConfig &cfg)
    : owned_(emptyTrace()), src_(&source), cfg_(cfg)
{
    if (source.lookback() < requiredStreamLookback(cfg)) {
        throw Error(ErrorCategory::InvalidConfig,
                    "synthetic instruction source lookback (" +
                        std::to_string(source.lookback()) +
                        ") cannot cover wrong-path replay for this "
                        "core configuration (needs " +
                        std::to_string(requiredStreamLookback(cfg)) +
                        "); enlarge the streaming ring");
    }
    init();
}

void
StsFrontend::init()
{
    // Probe the first position so done() is immediately true for an
    // empty stream (the core's drain check runs before any fetch).
    exhausted_ = src_->at(0) == nullptr;
}

void
StsFrontend::fetchCycle(cpu::FetchQueue &ifq, uint32_t maxSlots,
                        uint64_t cycle, SimStats &stats)
{
    if (fetchTel_.stalled(cycle, stats))
        return;

    // Fetch at fetchSpeed times the core width, like the
    // execution-driven frontend.
    uint32_t budget = fetchTel_.budget(maxSlots);
    uint32_t takenSeen = 0;

    while (budget > 0) {
        const uint64_t pos = cursor_;
        const SynthInst *sp = src_->at(pos);
        if (!sp) {
            // Wrong-path: wait for recovery; else: stream done.
            if (!wrongPathMode_)
                exhausted_ = true;
            return;
        }
        const SynthInst &si = *sp;
        ++cursor_;

        // Build the record in its IFQ slot: every path from here
        // delivers exactly one instruction.
        DynInst &di = ifq.push();
        di.seq = nextSeq_++;
        if (!wrongPathMode_)
            seqOfPos_[pos % PosRing] = di.seq;
        di.pc = si.blockId;
        di.cls = si.cls;
        di.numSrcs = si.numSrcs;
        di.hasDest = si.hasDest;
        di.isLoad = si.isLoad;
        di.isStore = si.isStore;
        di.isCtrl = si.isCtrl;
        di.wrongPath = wrongPathMode_;
        di.taken = si.taken;
        di.outcome = si.outcome;
        di.dl1Miss = si.dl1Miss;
        di.dl2Miss = si.dl2Miss;
        di.dtlbMiss = si.dtlbMiss;
        for (int p = 0; p < di.numSrcs; ++p) {
            const uint16_t d = si.depDist[p];
            di.srcProducer[p] = (d != 0 && d <= pos)
                ? seqOfPos_[(pos - d) % PosRing] : 0;
        }

        // I-side flags (step 7): stall fetch past the hit latency.
        uint32_t extraStall = 0;
        if (si.il1Access) {
            stats.touch(PowerUnit::ICache, cycle);
            stats.touch(PowerUnit::ITlb, cycle);
            if (si.il1Miss) {
                stats.touch(PowerUnit::L2, cycle);
                extraStall += cfg_.l2.latency;
                if (si.il2Miss)
                    extraStall += cfg_.memLatency;
            }
            if (si.itlbMiss)
                extraStall += cfg_.itlb.missPenalty;
        }

        if (di.isCtrl) {
            stats.touch(PowerUnit::Bpred, cycle);
            if (!wrongPathMode_ &&
                di.outcome != BranchOutcome::Correct) {
                // Subsequent trace entries play the incorrect path and
                // are re-fetched from resumeCursor_ after the squash.
                resumeCursor_ = cursor_;
                wrongPathMode_ = true;
            }
            if (di.taken)
                ++takenSeen;
        }

        ++stats.fetched;
        --budget;

        if (takenSeen >= cfg_.fetchSpeed)
            return;
        if (extraStall > 0) {
            fetchTel_.icacheStall(cycle, extraStall);
            return;
        }
    }
}

DispatchAction
StsFrontend::atDispatch(DynInst &di, uint64_t cycle, SimStats &stats)
{
    if (!di.isCtrl || di.wrongPath)
        return DispatchAction::None;

    stats.touch(PowerUnit::Bpred, cycle);  // dispatch-time update

    if (di.outcome == BranchOutcome::FetchRedirect) {
        cursor_ = resumeCursor_;
        wrongPathMode_ = false;
        fetchTel_.redirect(cycle);
        return DispatchAction::SquashIfq;
    }
    if (di.outcome == BranchOutcome::Mispredict)
        return DispatchAction::EnterWrongPath;
    return DispatchAction::None;
}

void
StsFrontend::recover(const DynInst &branch, uint64_t cycle)
{
    (void)branch;
    cursor_ = resumeCursor_;
    wrongPathMode_ = false;
    fetchTel_.mispredictRecovery(cycle);
}

MemEvent
StsFrontend::loadAccess(const DynInst &di)
{
    MemEvent ev;
    ev.latency = cfg_.dl1.latency;
    if (di.wrongPath)
        return ev;
    ev.l1Miss = di.dl1Miss;
    ev.l2Access = di.dl1Miss;
    ev.l2Miss = di.dl2Miss;
    ev.tlbMiss = di.dtlbMiss;
    if (di.dl1Miss) {
        ev.latency += cfg_.l2.latency;
        if (di.dl2Miss)
            ev.latency += cfg_.memLatency;
    }
    if (di.dtlbMiss)
        ev.latency += cfg_.dtlb.missPenalty;
    return ev;
}

MemEvent
StsFrontend::storeAccess(const DynInst &di)
{
    (void)di;
    MemEvent ev;
    ev.latency = cfg_.dl1.latency;
    return ev;
}

bool
StsFrontend::done() const
{
    return !wrongPathMode_ && exhausted_;
}

} // namespace ssim::core
