#include "sts_frontend.hh"

#include <algorithm>

namespace ssim::core
{

using cpu::BranchOutcome;
using cpu::DispatchAction;
using cpu::DynInst;
using cpu::MemEvent;
using cpu::PowerUnit;
using cpu::SimStats;

StsFrontend::StsFrontend(const SyntheticTrace &trace,
                         const cpu::CoreConfig &cfg)
    : trace_(&trace), cfg_(cfg)
{
}

void
StsFrontend::fetchCycle(std::deque<DynInst> &ifq, uint32_t maxSlots,
                        uint64_t cycle, SimStats &stats)
{
    if (fetchTel_.stalled(cycle, stats))
        return;

    // Fetch at fetchSpeed times the core width, like the
    // execution-driven frontend.
    uint32_t budget = fetchTel_.budget(maxSlots);
    uint32_t takenSeen = 0;

    while (budget > 0) {
        if (cursor_ >= trace_->insts.size())
            return;  // wrong-path: wait for recovery; else: done
        const size_t pos = cursor_;
        const SynthInst &si = trace_->insts[cursor_++];

        DynInst di;
        di.seq = nextSeq_++;
        if (!wrongPathMode_)
            seqOfPos_[pos % PosRing] = di.seq;
        di.pc = si.blockId;
        di.cls = si.cls;
        di.numSrcs = si.numSrcs;
        di.hasDest = si.hasDest;
        di.isLoad = si.isLoad;
        di.isStore = si.isStore;
        di.isCtrl = si.isCtrl;
        di.wrongPath = wrongPathMode_;
        di.taken = si.taken;
        di.outcome = si.outcome;
        di.dl1Miss = si.dl1Miss;
        di.dl2Miss = si.dl2Miss;
        di.dtlbMiss = si.dtlbMiss;
        for (int p = 0; p < di.numSrcs; ++p) {
            const uint16_t d = si.depDist[p];
            di.srcProducer[p] = (d != 0 && d <= pos)
                ? seqOfPos_[(pos - d) % PosRing] : 0;
        }

        // I-side flags (step 7): stall fetch past the hit latency.
        uint32_t extraStall = 0;
        if (si.il1Access) {
            stats.touch(PowerUnit::ICache, cycle);
            stats.touch(PowerUnit::ITlb, cycle);
            if (si.il1Miss) {
                stats.touch(PowerUnit::L2, cycle);
                extraStall += cfg_.l2.latency;
                if (si.il2Miss)
                    extraStall += cfg_.memLatency;
            }
            if (si.itlbMiss)
                extraStall += cfg_.itlb.missPenalty;
        }

        if (di.isCtrl) {
            stats.touch(PowerUnit::Bpred, cycle);
            if (!wrongPathMode_ &&
                di.outcome != BranchOutcome::Correct) {
                // Subsequent trace entries play the incorrect path and
                // are re-fetched from resumeCursor_ after the squash.
                resumeCursor_ = cursor_;
                wrongPathMode_ = true;
            }
            if (di.taken)
                ++takenSeen;
        }

        ifq.push_back(di);
        ++stats.fetched;
        --budget;

        if (takenSeen >= cfg_.fetchSpeed)
            return;
        if (extraStall > 0) {
            fetchTel_.icacheStall(cycle, extraStall);
            return;
        }
    }
}

DispatchAction
StsFrontend::atDispatch(DynInst &di, uint64_t cycle, SimStats &stats)
{
    if (!di.isCtrl || di.wrongPath)
        return DispatchAction::None;

    stats.touch(PowerUnit::Bpred, cycle);  // dispatch-time update

    if (di.outcome == BranchOutcome::FetchRedirect) {
        cursor_ = resumeCursor_;
        wrongPathMode_ = false;
        fetchTel_.redirect(cycle);
        return DispatchAction::SquashIfq;
    }
    if (di.outcome == BranchOutcome::Mispredict)
        return DispatchAction::EnterWrongPath;
    return DispatchAction::None;
}

void
StsFrontend::recover(const DynInst &branch, uint64_t cycle)
{
    (void)branch;
    cursor_ = resumeCursor_;
    wrongPathMode_ = false;
    fetchTel_.mispredictRecovery(cycle);
}

MemEvent
StsFrontend::loadAccess(const DynInst &di)
{
    MemEvent ev;
    ev.latency = cfg_.dl1.latency;
    if (di.wrongPath)
        return ev;
    ev.l1Miss = di.dl1Miss;
    ev.l2Access = di.dl1Miss;
    ev.l2Miss = di.dl2Miss;
    ev.tlbMiss = di.dtlbMiss;
    if (di.dl1Miss) {
        ev.latency += cfg_.l2.latency;
        if (di.dl2Miss)
            ev.latency += cfg_.memLatency;
    }
    if (di.dtlbMiss)
        ev.latency += cfg_.dtlb.missPenalty;
    return ev;
}

MemEvent
StsFrontend::storeAccess(const DynInst &di)
{
    (void)di;
    MemEvent ev;
    ev.latency = cfg_.dl1.latency;
    return ev;
}

bool
StsFrontend::done() const
{
    return !wrongPathMode_ && cursor_ >= trace_->insts.size();
}

} // namespace ssim::core
