/**
 * @file
 * Synthetic trace frontend (Figure 1, step 3): drives the same
 * out-of-order core as the execution-driven frontend, but from a
 * synthetic instruction source. It models no branch predictors and no
 * caches — all locality behaviour comes from the trace's annotated
 * flags (section 2.3):
 *
 *  - a flagged mispredicted branch makes fetch continue with upcoming
 *    trace instructions *as if they were wrong-path* (to model
 *    resource contention); when the branch resolves they are squashed
 *    and the same instructions are re-fetched as the correct path;
 *  - load latencies follow the D-cache/D-TLB flags;
 *  - I-cache flags stall the fetch engine.
 *
 * The source is position-addressed (SynthInstSource), so the frontend
 * runs identically over a materialized trace and over a
 * StreamingGenerator producing instructions on demand — the streamed
 * path never holds the whole trace. Wrong-path replay rewinds at most
 * requiredStreamLookback(cfg) positions, which is the window a
 * streaming source must keep addressable.
 */

#ifndef SSIM_CORE_STS_FRONTEND_HH
#define SSIM_CORE_STS_FRONTEND_HH

#include <cstdint>

#include "cpu/config.hh"
#include "cpu/pipeline/frontend.hh"
#include "cpu/pipeline/telemetry.hh"
#include "synth_trace.hh"

namespace ssim::core
{

/**
 * The farthest a synthetic-trace frontend can rewind its fetch
 * position on a wrong-path squash: everything the machine can hold
 * in flight (IFQ + window) plus one fetch burst of slack.
 */
uint64_t requiredStreamLookback(const cpu::CoreConfig &cfg);

/** Synthetic-trace instruction source. */
class StsFrontend : public cpu::Frontend
{
  public:
    /** Drive the core from a materialized trace. */
    StsFrontend(const SyntheticTrace &trace,
                const cpu::CoreConfig &cfg);

    /**
     * Drive the core from an incremental source (streaming path).
     * @throws ssim::Error (InvalidConfig) when the source's lookback
     *         window cannot cover this configuration's wrong-path
     *         replay rewind (requiredStreamLookback).
     */
    StsFrontend(SynthInstSource &source, const cpu::CoreConfig &cfg);

    void fetchCycle(cpu::FetchQueue &ifq, uint32_t maxSlots,
                    uint64_t cycle, cpu::SimStats &stats) override;
    cpu::DispatchAction atDispatch(cpu::DynInst &di, uint64_t cycle,
                                   cpu::SimStats &stats) override;
    void recover(const cpu::DynInst &branch, uint64_t cycle) override;
    cpu::MemEvent loadAccess(const cpu::DynInst &di) override;
    cpu::MemEvent storeAccess(const cpu::DynInst &di) override;
    bool done() const override;
    uint64_t fetchStallUntil() const override
    {
        return fetchTel_.stallUntil();
    }

  private:
    void init();

    MaterializedSource owned_;     ///< backs the trace constructor
    SynthInstSource *src_;
    cpu::CoreConfig cfg_;

    /** Shared fetch-stall gate (see cpu/pipeline/telemetry.hh). */
    cpu::FetchTelemetry fetchTel_{cfg_};

    uint64_t nextSeq_ = 1;
    uint64_t cursor_ = 0;
    uint64_t resumeCursor_ = 0;
    bool wrongPathMode_ = false;
    bool exhausted_ = false;   ///< correct-path fetch hit stream end

    /**
     * Sequence number of the correct-path fetch of each recent trace
     * position. Dependencies are distances in trace positions, and a
     * position can be fetched more than once (wrong-path fill is
     * squashed and re-fetched), so producers must be resolved by
     * position, not by arithmetic on sequence numbers. Sized to cover
     * the maximum dependency distance plus a block of slack.
     */
    static constexpr size_t PosRing = 1024;
    uint64_t seqOfPos_[PosRing] = {};
};

} // namespace ssim::core

#endif // SSIM_CORE_STS_FRONTEND_HH
