#include "statsim.hh"

#include "cpu/pipeline/ooo_core.hh"
#include "sts_frontend.hh"

namespace ssim::core
{

SimResult
scoreRun(const cpu::SimStats &stats, const cpu::CoreConfig &cfg)
{
    SimResult res;
    res.stats = stats;
    const power::PowerModel model(cfg);
    res.power = model.evaluate(stats);
    res.ipc = stats.ipc();
    res.epc = res.power.total;
    res.edp = power::PowerModel::energyDelayProduct(res.epc, res.ipc);
    return res;
}

SimResult
runExecutionDriven(const isa::Program &prog, const cpu::CoreConfig &cfg,
                   const cpu::EdsOptions &opts)
{
    cpu::EdsFrontend frontend(prog, cfg, opts);
    cpu::OoOCore core(cfg, frontend);
    return scoreRun(core.run(), cfg);
}

SimResult
simulateSyntheticTrace(const SyntheticTrace &trace,
                       const cpu::CoreConfig &cfg)
{
    StsFrontend frontend(trace, cfg);
    cpu::OoOCore core(cfg, frontend);
    return scoreRun(core.run(), cfg);
}

SimResult
runStatisticalSimulation(const isa::Program &prog,
                         const cpu::CoreConfig &cfg,
                         const StatSimOptions &opts)
{
    const StatisticalProfile profile =
        buildProfile(prog, cfg, opts.profile);
    const SyntheticTrace trace =
        generateSyntheticTrace(profile, opts.generation);
    return simulateSyntheticTrace(trace, cfg);
}

} // namespace ssim::core
