#include "statsim.hh"

#include <optional>

#include "cpu/pipeline/ooo_core.hh"
#include "cpu/pipeline/telemetry.hh"
#include "sts_frontend.hh"

namespace ssim::core
{

namespace
{

/**
 * Shared observability tail for both simulation paths: run the core
 * (with telemetry attached when a registry is wanted), then publish
 * stats, occupancies, window IPC and the scored result.
 */
SimResult
runAndPublish(cpu::OoOCore &core, const cpu::CoreConfig &cfg,
              const ObsSink *sink, const cpu::MemoryHierarchy *mem)
{
    std::optional<cpu::PipelineTelemetry> tel;
    if (sink && (sink->registry || sink->trace)) {
        tel.emplace(cfg, sink->windowCycles);
        core.attachTelemetry(&*tel);
    }

    const cpu::SimStats &stats = core.run();
    SimResult res = scoreRun(stats, cfg);
    if (!tel)
        return res;
    tel->finish(stats.cycles, stats.committed);

    if (sink->registry) {
        obs::Registry &reg = *sink->registry;
        cpu::publishSimStats(reg, sink->prefix, stats);
        cpu::publishSchedCounters(reg, sink->prefix + ".sched",
                                  core.sched());
        tel->publish(reg, sink->prefix);
        if (mem)
            cpu::publishHierarchy(reg, sink->prefix + ".cache", *mem);
        reg.gauge(sink->prefix + ".power.epc").set(res.epc);
        reg.gauge(sink->prefix + ".power.edp").set(res.edp);
    }
    if (sink->trace) {
        // Windowed pipeline activity: one counter track, the cycle
        // number standing in for microseconds.
        sink->trace->threadName(0, sink->prefix + " pipeline");
        for (const cpu::IpcSample &s : tel->ipcSamples()) {
            sink->trace->counter(
                sink->prefix + ".ipc",
                static_cast<double>(s.endCycle), 0,
                {obs::TraceArg::num("ipc", s.ipc)});
        }
    }
    return res;
}

} // namespace

SimResult
scoreRun(const cpu::SimStats &stats, const cpu::CoreConfig &cfg)
{
    SimResult res;
    res.stats = stats;
    const power::PowerModel model(cfg);
    res.power = model.evaluate(stats);
    res.ipc = stats.ipc();
    res.epc = res.power.total;
    res.edp = power::PowerModel::energyDelayProduct(res.epc, res.ipc);
    return res;
}

SimResult
runExecutionDriven(const isa::Program &prog, const cpu::CoreConfig &cfg,
                   const cpu::EdsOptions &opts, const ObsSink *sink)
{
    cfg.validate();
    cpu::EdsFrontend frontend(prog, cfg, opts);
    cpu::OoOCore core(cfg, frontend);
    return runAndPublish(core, cfg, sink, &frontend.hierarchy());
}

SimResult
simulateSyntheticTrace(const SyntheticTrace &trace,
                       const cpu::CoreConfig &cfg, const ObsSink *sink)
{
    cfg.validate();
    StsFrontend frontend(trace, cfg);
    cpu::OoOCore core(cfg, frontend);
    // The synthetic path models no caches — locality comes from the
    // trace flags — so there is no hierarchy to publish.
    return runAndPublish(core, cfg, sink, nullptr);
}

SimResult
simulateSyntheticStream(StreamingGenerator &gen,
                        const cpu::CoreConfig &cfg, const ObsSink *sink)
{
    cfg.validate();
    StsFrontend frontend(gen, cfg);
    cpu::OoOCore core(cfg, frontend);
    SimResult res = runAndPublish(core, cfg, sink, nullptr);

    if (sink) {
        const GeneratorMetrics &m = gen.metrics();
        if (sink->registry) {
            // Deterministic counters only: for a fixed seed the same
            // values come out of every run, preserving the
            // --stats-json byte-stability contract.
            obs::Registry &reg = *sink->registry;
            const std::string p = sink->prefix + ".gen.";
            reg.counter(p + "emitted").set(m.emitted);
            reg.counter(p + "blocks").set(m.blocks);
            reg.counter(p + "start-picks").set(m.startPicks);
            reg.counter(p + "walk-restarts").set(m.walkRestarts);
            reg.counter(p + "dep-retries").set(m.depRetries);
            reg.counter(p + "dep-squashes").set(m.depSquashes);
            reg.counter(p + "alias-tables").set(m.aliasTables);
        }
        if (sink->trace) {
            // Wall-clock observation: lands in the trace (which is
            // schema-checked, not byte-compared), never the registry.
            sink->trace->counter(
                sink->prefix + ".gen.build-seconds", 0.0, 0,
                {obs::TraceArg::num("seconds", m.buildSeconds)});
        }
    }
    return res;
}

SimResult
runStatisticalSimulation(const isa::Program &prog,
                         const cpu::CoreConfig &cfg,
                         const StatSimOptions &opts,
                         const ObsSink *sink)
{
    // Validate everything up front: a sweep over many design points
    // should learn that one point is bad before paying for the
    // profiling pass, not halfway through it.
    cfg.validate();
    opts.profile.validate();
    opts.generation.validate();
    const StatisticalProfile profile =
        buildProfile(prog, cfg, opts.profile);
    // Stream the synthetic trace straight into the core: the trace is
    // never materialized and generation overlaps simulation.
    StreamingGenerator gen(profile, opts.generation,
                           requiredStreamLookback(cfg));
    return simulateSyntheticStream(gen, cfg, sink);
}

} // namespace ssim::core
