#include "statsim.hh"

#include "cpu/pipeline/ooo_core.hh"
#include "sts_frontend.hh"

namespace ssim::core
{

SimResult
scoreRun(const cpu::SimStats &stats, const cpu::CoreConfig &cfg)
{
    SimResult res;
    res.stats = stats;
    const power::PowerModel model(cfg);
    res.power = model.evaluate(stats);
    res.ipc = stats.ipc();
    res.epc = res.power.total;
    res.edp = power::PowerModel::energyDelayProduct(res.epc, res.ipc);
    return res;
}

SimResult
runExecutionDriven(const isa::Program &prog, const cpu::CoreConfig &cfg,
                   const cpu::EdsOptions &opts)
{
    cfg.validate();
    cpu::EdsFrontend frontend(prog, cfg, opts);
    cpu::OoOCore core(cfg, frontend);
    return scoreRun(core.run(), cfg);
}

SimResult
simulateSyntheticTrace(const SyntheticTrace &trace,
                       const cpu::CoreConfig &cfg)
{
    cfg.validate();
    StsFrontend frontend(trace, cfg);
    cpu::OoOCore core(cfg, frontend);
    return scoreRun(core.run(), cfg);
}

SimResult
runStatisticalSimulation(const isa::Program &prog,
                         const cpu::CoreConfig &cfg,
                         const StatSimOptions &opts)
{
    // Validate everything up front: a sweep over many design points
    // should learn that one point is bad before paying for the
    // profiling pass, not halfway through it.
    cfg.validate();
    opts.profile.validate();
    opts.generation.validate();
    const StatisticalProfile profile =
        buildProfile(prog, cfg, opts.profile);
    const SyntheticTrace trace =
        generateSyntheticTrace(profile, opts.generation);
    return simulateSyntheticTrace(trace, cfg);
}

} // namespace ssim::core
