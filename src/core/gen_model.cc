#include "gen_model.hh"

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <unordered_map>
#include <vector>

#include "obs/metrics.hh"
#include "serialize.hh"
#include "util/error.hh"

namespace ssim::core
{

void
GenerationOptions::validate() const
{
    if (reductionFactor == 0) {
        throw Error(ErrorCategory::InvalidConfig,
                    "generation options: reductionFactor = 0 is "
                    "undefined (R >= 1; R = 1 reproduces the full "
                    "profiled length)");
    }
    if (maxDependencyRetries == 0) {
        throw Error(ErrorCategory::InvalidConfig,
                    "generation options: maxDependencyRetries = 0 "
                    "would drop every dependency (the paper uses "
                    "1000)");
    }
}

GenModel::GenModel(const StatisticalProfile &profile,
                   const GenerationOptions &opts)
    : reductionFactor_(opts.reductionFactor),
      maxDependencyRetries_(opts.maxDependencyRetries),
      benchmark_(profile.benchmark)
{
    opts.validate();
    const auto t0 = std::chrono::steady_clock::now();
    build(profile);
    buildSeconds_ = std::chrono::duration<double>(
        std::chrono::steady_clock::now() - t0).count();

    // The expected synthetic trace length: a 1/R fraction of the
    // profiled stream.
    target_ = std::max<uint64_t>(
        1, profile.instructions /
               std::max<uint64_t>(1, reductionFactor_));
}

void
GenModel::build(const StatisticalProfile &profile)
{
    const uint64_t r = std::max<uint64_t>(1, reductionFactor_);

    for (const BlockShape &shape : profile.shapes)
        maxBlockLen_ = std::max<uint64_t>(maxBlockLen_, shape.size());

    // Canonical (sorted) node order: generation must be a pure
    // function of the profile's content, independent of hash-map
    // iteration order (so a saved/reloaded profile reproduces the
    // same trace for the same seed).
    std::vector<const Gram *> grams;
    grams.reserve(profile.nodes.size());
    for (const auto &[gram, node] : profile.nodes) {
        if (node.occurrences / r > 0)
            grams.push_back(&gram);
    }
    std::sort(grams.begin(), grams.end(),
              [](const Gram *a, const Gram *b) { return *a < *b; });

    std::unordered_map<Gram, uint32_t, GramHash> index;
    occurrences_.reserve(grams.size());
    for (const Gram *gram : grams) {
        const auto &node = profile.nodes.at(*gram);
        const uint32_t idx = static_cast<uint32_t>(nodes_.size());
        index.emplace(*gram, idx);
        ReducedNode rn;
        rn.blockId = StatisticalProfile::blockOf(*gram);
        rn.entryPlan = makePlan(profile, rn.blockId, node.entryStats);
        occurrences_.push_back(node.occurrences / r);
        nodes_.push_back(std::move(rn));
    }

    // Surviving edges (both endpoints alive), in ascending
    // next-block order for the same reason.
    for (const Gram *gram : grams) {
        const auto &node = profile.nodes.at(*gram);
        ReducedNode &rn = nodes_[index.at(*gram)];
        std::vector<uint32_t> nextBlocks;
        nextBlocks.reserve(node.edges.size());
        for (const auto &[nextBlock, edge] : node.edges)
            nextBlocks.push_back(nextBlock);
        std::sort(nextBlocks.begin(), nextBlocks.end());
        std::vector<uint64_t> weights;
        for (uint32_t nextBlock : nextBlocks) {
            if (profile.order == 0)
                continue;  // k = 0: no edges by definition
            const auto &edge = node.edges.at(nextBlock);
            Gram destGram = *gram;
            destGram.erase(destGram.begin());
            destGram.push_back(nextBlock);
            const auto dit = index.find(destGram);
            if (dit == index.end())
                continue;
            rn.edges.push_back(
                {dit->second, makePlan(profile,
                                       nodes_[dit->second].blockId,
                                       edge.stats)});
            weights.push_back(edge.count);
        }
        rn.edgeSampler.build(weights);
        ++aliasTables_;
    }
}

/**
 * Freeze one qualified block's statistics into an emission plan: all
 * probability ratios the paper's steps 3-8 need, computed once here
 * instead of per emitted instruction, plus prepared (alias-backed)
 * dependency-distance distributions. The dependency distributions are
 * copied into model-owned storage and prepared there — the profile's
 * lazy-freeze members are never touched, so a profile shared across
 * threads stays genuinely read-only.
 */
const GenModel::EmissionPlan *
GenModel::makePlan(const StatisticalProfile &profile, uint32_t blockId,
                   const QBlockStats &stats)
{
    const BlockShape &shape = profile.shapes[blockId];
    const double occ = static_cast<double>(
        std::max<uint64_t>(1, stats.occurrences));

    EmissionPlan plan;
    plan.slots.resize(shape.size());
    for (size_t i = 0; i < shape.size(); ++i) {
        const SlotShape &slot = shape[i];
        SlotPlan &sp = plan.slots[i];
        sp.proto.cls = slot.cls;
        sp.proto.numSrcs = slot.numSrcs;
        sp.proto.hasDest = slot.hasDest;
        sp.proto.isLoad = slot.isLoad;
        sp.proto.isStore = slot.isStore;
        sp.proto.isCtrl = slot.isCtrl;
        sp.proto.blockId = blockId;

        if (i >= stats.slots.size())
            continue;
        const SlotStats &ss = stats.slots[i];
        sp.hasStats = true;
        for (int p = 0; p < 2; ++p) {
            if (!ss.depDist[p].empty()) {
                deps_.push_back(ss.depDist[p]);
                deps_.back().prepare();
                sp.dep[p] = &deps_.back();
                ++aliasTables_;
            }
        }
        sp.pIl1Access = static_cast<double>(ss.il1Access) / occ;
        if (ss.il1Access > 0) {
            sp.pIl1Miss = static_cast<double>(ss.il1Miss) /
                static_cast<double>(ss.il1Access);
            sp.pItlbMiss = static_cast<double>(ss.itlbMiss) /
                static_cast<double>(ss.il1Access);
        }
        if (ss.il1Miss > 0) {
            sp.pIl2Miss = static_cast<double>(ss.il2Miss) /
                static_cast<double>(ss.il1Miss);
        }
        if (slot.isLoad) {
            sp.pDl1Miss = static_cast<double>(ss.dl1Miss) / occ;
            if (ss.dl1Miss > 0) {
                sp.pDl2Miss = static_cast<double>(ss.dl2Miss) /
                    static_cast<double>(ss.dl1Miss);
            }
            sp.pDtlbMiss = static_cast<double>(ss.dtlbMiss) / occ;
        }
    }

    if (stats.branch.count > 0) {
        const BranchStats &b = stats.branch;
        const double total = static_cast<double>(b.count);
        plan.hasBranchStats = true;
        plan.pTaken = static_cast<double>(b.taken) / total;
        plan.pMispredict = static_cast<double>(b.mispredict) / total;
        plan.pMisOrRedirect = plan.pMispredict +
            static_cast<double>(b.redirect) / total;
    }

    plans_.push_back(std::move(plan));
    return &plans_.back();
}

GenModelCache &
GenModelCache::instance()
{
    static GenModelCache cache;
    return cache;
}

bool
GenModelCache::enabled()
{
    const char *env = std::getenv("SSIM_GEN_MODEL_CACHE");
    return !env || std::atoi(env) != 0;
}

uint64_t
GenModelCache::digestFor(
    const std::shared_ptr<const StatisticalProfile> &profile)
{
    const StatisticalProfile *key = profile.get();
    {
        std::lock_guard<std::mutex> lock(digestMu_);
        auto it = digests_.find(key);
        // The weak_ptr guards against address reuse: a hit is only a
        // hit when the memoized owner is still this profile object.
        if (it != digests_.end() &&
            it->second.owner.lock() == profile) {
            return it->second.digest;
        }
    }
    const uint64_t digest = profileDigest(*profile);
    std::lock_guard<std::mutex> lock(digestMu_);
    if (digests_.size() > 64) {
        for (auto it = digests_.begin(); it != digests_.end();) {
            if (it->second.owner.expired())
                it = digests_.erase(it);
            else
                ++it;
        }
    }
    digests_[key] = {profile, digest};
    return digest;
}

std::shared_ptr<const GenModel>
GenModelCache::get(
    const std::shared_ptr<const StatisticalProfile> &profile,
    const GenerationOptions &opts)
{
    if (!profile) {
        throw Error(ErrorCategory::InvalidConfig,
                    "GenModelCache::get: null profile");
    }
    if (!enabled())
        return std::make_shared<const GenModel>(*profile, opts);

    opts.validate();
    Key key;
    key.digest = digestFor(profile);
    key.reduction = std::max<uint64_t>(1, opts.reductionFactor);
    key.retries = opts.maxDependencyRetries;
    return cache_.get(key, [&] {
        return std::make_shared<const GenModel>(*profile, opts);
    });
}

GenModelCacheStats
GenModelCache::stats() const
{
    GenModelCacheStats s;
    s.hits = cache_.hits();
    s.misses = cache_.misses();
    s.evictions = cache_.evictions();
    return s;
}

void
GenModelCache::clear()
{
    cache_.clear();
    std::lock_guard<std::mutex> lock(digestMu_);
    digests_.clear();
}

void
GenModelCache::setCapacity(size_t capacity)
{
    cache_.setCapacity(capacity);
}

void
publishModelCacheStats(obs::Registry &registry,
                       const std::string &prefix)
{
    const GenModelCacheStats s = GenModelCache::instance().stats();
    registry.counter(prefix + ".hits").set(s.hits);
    registry.counter(prefix + ".misses").set(s.misses);
    registry.counter(prefix + ".evictions").set(s.evictions);
}

} // namespace ssim::core
