/**
 * @file
 * Statistical profile (de)serialization.
 *
 * Profiling is the one pass over the full program execution; saving
 * the profile lets a design-space exploration reuse it across
 * processes and machines (the paper's amortization argument). The
 * format is a line-oriented text format, versioned, and fully
 * round-trip tested.
 */

#ifndef SSIM_CORE_SERIALIZE_HH
#define SSIM_CORE_SERIALIZE_HH

#include <iosfwd>
#include <string>

#include "profile.hh"

namespace ssim::core
{

/** Write @p profile to @p os. */
void saveProfile(const StatisticalProfile &profile, std::ostream &os);

/**
 * Read a profile written by saveProfile.
 * Calls fatal() on malformed or version-mismatched input.
 */
StatisticalProfile loadProfile(std::istream &is);

/** Convenience file wrappers. */
void saveProfileFile(const StatisticalProfile &profile,
                     const std::string &path);
StatisticalProfile loadProfileFile(const std::string &path);

} // namespace ssim::core

#endif // SSIM_CORE_SERIALIZE_HH
