/**
 * @file
 * Statistical profile (de)serialization.
 *
 * Profiling is the one pass over the full program execution; saving
 * the profile lets a design-space exploration reuse it across
 * processes and machines (the paper's amortization argument). Because
 * a saved profile may be weeks old, copied between machines, or
 * truncated by a full disk, loading is a *strict validating parse*:
 *
 *  - a versioned header carries an FNV-1a checksum and byte count of
 *    the payload, so truncation and bit-flips are detected
 *    deterministically before any field is interpreted;
 *  - every field is parsed as a strict unsigned integer (no "nan",
 *    no negatives, no trailing garbage on a line);
 *  - semantic invariants are enforced: event counts never exceed
 *    their denominators (all derived probabilities lie in [0,1]),
 *    dependency distances are capped at MaxDependencyDistance,
 *    grams and edges reference existing blocks, and per-node edge
 *    counts never sum to more than the node's occurrences.
 *
 * Failures raise ssim::Error with the profile path and the 1-based
 * line number of the offending line; the process is never terminated
 * by this layer. Callers that prefer branching to unwinding use the
 * try* wrappers, which return Expected.
 *
 * Format (version 2, line-oriented text):
 *
 *   ssim-profile 2 <fnv1a64-hex> <payload-bytes>
 *   <payload: the version-1 body, unchanged>
 */

#ifndef SSIM_CORE_SERIALIZE_HH
#define SSIM_CORE_SERIALIZE_HH

#include <iosfwd>
#include <string>

#include "profile.hh"
#include "util/error.hh"

namespace ssim::core
{

/** Current on-disk profile format version. */
constexpr int ProfileFormatVersion = 2;

/** FNV-1a 64-bit hash used as the payload checksum. */
uint64_t profileChecksum(const std::string &payload);

/**
 * Canonical content digest of @p profile, independent of in-memory
 * hash-map iteration order: a profile built in-process and the same
 * profile reloaded from disk digest identically (unlike hashing the
 * serialized payload, whose node order follows the unordered_map).
 * Stamped into sweep-journal headers as provenance so the surrogate
 * trainer (src/proxy) can refuse to pool journals from different
 * profiles.
 */
uint64_t profileDigest(const StatisticalProfile &profile);

/** Write @p profile to @p os (header + checksummed payload). */
void saveProfile(const StatisticalProfile &profile, std::ostream &os);

/**
 * Read and validate a profile written by saveProfile.
 *
 * @param file name used in error context (the profile path; defaults
 *        to "<stream>" for in-memory streams).
 * @throws ssim::Error (ParseError, CorruptData, VersionMismatch) with
 *         file/line context on any malformed, corrupted, or
 *         version-incompatible input.
 */
StatisticalProfile loadProfile(std::istream &is,
                               const std::string &file = "<stream>");

/** Non-throwing variant of loadProfile. */
Expected<StatisticalProfile> tryLoadProfile(
    std::istream &is, const std::string &file = "<stream>");

/**
 * Convenience file wrappers. The plain forms throw ssim::Error
 * (IoError for unopenable/unwritable paths, plus everything
 * loadProfile raises); the try* forms return Expected instead.
 */
void saveProfileFile(const StatisticalProfile &profile,
                     const std::string &path);
StatisticalProfile loadProfileFile(const std::string &path);
Expected<void> trySaveProfileFile(const StatisticalProfile &profile,
                                  const std::string &path);
Expected<StatisticalProfile> tryLoadProfileFile(const std::string &path);

} // namespace ssim::core

#endif // SSIM_CORE_SERIALIZE_HH
