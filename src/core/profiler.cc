#include "profiler.hh"

#include <deque>
#include <memory>

#include "cpu/bpred/branch_unit.hh"
#include "cpu/cache/hierarchy.hh"
#include "isa/emulator.hh"
#include "util/error.hh"
#include "util/logging.hh"

namespace ssim::core
{

namespace
{

using cpu::BranchOutcome;
using cpu::BranchPrediction;
using cpu::BranchUnit;
using cpu::Ras;

/** One instruction inside the delayed-update FIFO. */
struct FifoEntry
{
    bool isBranch = false;
    uint32_t pc = 0;
    bool taken = false;
    uint32_t nextPc = 0;
    BranchOutcome outcome = BranchOutcome::Correct;
    Ras::State ras{0, 0};     ///< RAS state right after the lookup
    QBlockStats *nodeStats = nullptr;
    QBlockStats *edgeStats = nullptr;
};

/** Record a resolved branch event into node and edge statistics. */
void
recordBranchEvent(QBlockStats *nodeStats, QBlockStats *edgeStats,
                  bool taken, BranchOutcome outcome)
{
    for (QBlockStats *qb : {nodeStats, edgeStats}) {
        if (!qb)
            continue;
        BranchStats &b = qb->branch;
        ++b.count;
        if (taken)
            ++b.taken;
        if (outcome == BranchOutcome::Mispredict)
            ++b.mispredict;
        else if (outcome == BranchOutcome::FetchRedirect)
            ++b.redirect;
    }
}

/**
 * The delayed-update FIFO of section 2.1.3. Lookup on insertion with
 * stale predictor state; update on removal; squash-and-replay on a
 * misprediction detected at removal.
 */
class DelayedUpdateFifo
{
  public:
    DelayedUpdateFifo(const isa::Program &prog, BranchUnit &bpred,
                      uint32_t capacity, uint32_t fetchSpeed,
                      uint32_t decodeWidth)
        : prog_(&prog), bpred_(&bpred),
          capacity_(std::max(1u, capacity)),
          fetchSpeed_(std::max(1u, fetchSpeed)),
          decodeWidth_(std::max(1u, decodeWidth))
    {
    }

    /**
     * Insert one instruction, mirroring the fetch engine's cycle
     * structure: a fetch cycle ends after fetchSpeed x decodeWidth
     * instructions, after fetchSpeed taken branches, or when the FIFO
     * (the IFQ) is full; each cycle boundary dispatches — i.e.
     * removes and updates — up to decodeWidth instructions. For codes
     * with few taken branches the FIFO runs at full IFQ capacity, the
     * paper's model; dense taken branches throttle fetch and shorten
     * the effective lookup->update delay, as they do in the pipeline.
     */
    void
    insert(FifoEntry e)
    {
        if (fetchedThisCycle_ >= fetchSpeed_ * decodeWidth_ ||
            takenThisCycle_ >= fetchSpeed_) {
            endCycle();
        }
        while (fifo_.size() >= capacity_)
            endCycle();
        if (e.isBranch)
            lookup(e);
        const bool taken = e.isBranch && e.taken;
        fifo_.push_back(e);
        ++fetchedThisCycle_;
        if (taken)
            ++takenThisCycle_;
    }

    /** Flush remaining entries at end of stream. */
    void
    drain()
    {
        while (!fifo_.empty())
            removeOldest();
    }

  private:
    void
    lookup(FifoEntry &e)
    {
        const isa::Instruction &inst = prog_->text[e.pc];
        const BranchPrediction pred = bpred_->predict(e.pc, inst);
        e.ras = bpred_->rasState();
        e.outcome = BranchUnit::classify(inst, pred, e.taken, e.nextPc,
                                         e.pc + 1);
    }

    void
    removeOldest()
    {
        FifoEntry e = fifo_.front();
        fifo_.pop_front();
        if (!e.isBranch)
            return;

        bpred_->update(e.pc, prog_->text[e.pc], e.taken, e.nextPc);
        recordBranchEvent(e.nodeStats, e.edgeStats, e.taken, e.outcome);

        if (e.outcome == BranchOutcome::Mispredict) {
            // The younger FIFO residents were looked up with the
            // pre-recovery state; squash them and replay with fresh
            // lookups through the normal cycle-structured insertion,
            // as the refetched instructions would be.
            bpred_->repairRas(e.ras);
            std::deque<FifoEntry> squashed;
            squashed.swap(fifo_);
            fetchedThisCycle_ = 0;
            takenThisCycle_ = 0;
            for (FifoEntry &s : squashed)
                insert(s);
        }
    }

    /** One cycle boundary: dispatch up to decodeWidth instructions. */
    void
    endCycle()
    {
        fetchedThisCycle_ = 0;
        takenThisCycle_ = 0;
        for (uint32_t i = 0; i < decodeWidth_ && !fifo_.empty(); ++i)
            removeOldest();
    }

    const isa::Program *prog_;
    BranchUnit *bpred_;
    uint32_t capacity_;
    uint32_t fetchSpeed_;
    uint32_t decodeWidth_;
    uint32_t fetchedThisCycle_ = 0;
    uint32_t takenThisCycle_ = 0;
    std::deque<FifoEntry> fifo_;
};

/** Build the static per-block shapes. */
std::vector<BlockShape>
buildShapes(const isa::Program &prog)
{
    std::vector<BlockShape> shapes(prog.numBlocks());
    for (size_t b = 0; b < prog.numBlocks(); ++b) {
        const isa::BasicBlock &bb = prog.blocks()[b];
        BlockShape shape(bb.size());
        for (uint32_t i = 0; i < bb.size(); ++i) {
            const isa::Instruction &inst = prog.text[bb.first + i];
            SlotShape &s = shape[i];
            s.cls = isa::classOf(inst.op);
            s.numSrcs = static_cast<uint8_t>(isa::numSrcRegs(inst));
            s.hasDest = isa::destReg(inst).valid();
            s.isLoad = isa::isLoad(inst.op);
            s.isStore = isa::isStore(inst.op);
            s.isCtrl = isa::isControlFlow(inst.op);
        }
        shapes[b] = std::move(shape);
    }
    return shapes;
}

} // namespace

void
ProfileOptions::validate() const
{
    if (order < 0 || order > 8) {
        throw Error(ErrorCategory::InvalidConfig,
                    "profile options: SFG order " +
                    std::to_string(order) +
                    " outside the supported range [0, 8]");
    }
    if (maxInsts == 0) {
        throw Error(ErrorCategory::InvalidConfig,
                    "profile options: maxInsts = 0 profiles nothing "
                    "(omit it or pass a positive window)");
    }
}

StatisticalProfile
buildProfile(const isa::Program &prog, const cpu::CoreConfig &cfg,
             const ProfileOptions &opts)
{
    opts.validate();
    cfg.validate();

    StatisticalProfile profile;
    profile.order = opts.order;
    profile.benchmark = prog.name;
    profile.shapes = buildShapes(prog);

    isa::Emulator emu(prog);
    cpu::MemoryHierarchy mem(cfg);
    BranchUnit bpred(cfg.bpred);

    if (opts.skipInsts > 0 && opts.warmupDuringSkip) {
        // Functional warming: keep the locality structures hot so a
        // mid-stream profiling window measures steady-state miss
        // rates (cold structures would dominate short windows).
        uint64_t line = ~0ull;
        for (uint64_t i = 0; i < opts.skipInsts && !emu.halted();
             ++i) {
            const uint32_t pc = emu.pc();
            const isa::Instruction &inst = prog.text[pc];
            if (!opts.perfectCaches) {
                const uint64_t thisLine =
                    isa::instAddr(pc) / cfg.il1.lineBytes;
                if (thisLine != line) {
                    line = thisLine;
                    mem.instAccess(isa::instAddr(pc));
                }
            }
            const bool ctrl = isa::isControlFlow(inst.op) &&
                inst.op != isa::Opcode::HALT;
            const isa::ExecutedInst rec = emu.step();
            if (rec.isMem && !opts.perfectCaches)
                mem.dataAccess(rec.memAddr, isa::isStore(inst.op));
            if (ctrl && !opts.perfectBpred)
                bpred.update(pc, inst, rec.taken, rec.nextPc);
        }
    } else {
        emu.run(opts.skipInsts);
    }
    DelayedUpdateFifo fifo(prog, bpred, cfg.ifqSize, cfg.fetchSpeed,
                           cfg.decodeWidth);

    const bool delayed =
        opts.branchMode == BranchProfilingMode::DelayedUpdate;

    SfgBuilder sfg(profile);
    QBlockStats *nodeStats = nullptr;
    QBlockStats *edgeStats = nullptr;

    // Dynamic RAW tracking: register -> dynamic index of last writer.
    uint64_t lastWriter[2][isa::NumIntRegs] = {};
    uint64_t dynIdx = 0;
    uint64_t lastLine = ~0ull;

    uint64_t executed = 0;
    while (!emu.halted()) {
        const uint32_t pc = emu.pc();
        if (prog.isLeader(pc)) {
            if (executed >= opts.maxInsts)
                break;
            const uint32_t blockId = prog.blockOf(pc);
            const SfgBuilder::BlockStats bs = sfg.startBlock(
                blockId, profile.shapes[blockId].size());
            nodeStats = bs.node;
            edgeStats = bs.edge;
        }
        const isa::Instruction &inst = prog.text[pc];
        const uint32_t slot = pc - prog.blocks()[prog.blockOf(pc)].first;
        ++dynIdx;

        // Dependency distances (microarchitecture-independent).
        if (nodeStats) {
            const int nsrcs = isa::numSrcRegs(inst);
            for (int s = 0; s < nsrcs; ++s) {
                const isa::RegRef r = isa::srcReg(inst, s);
                uint32_t dist = 0;
                if (r.valid() &&
                    !(r.space == isa::RegSpace::Int &&
                      r.index == isa::RegZero)) {
                    const uint64_t w =
                        lastWriter[static_cast<int>(r.space)][r.index];
                    if (w != 0) {
                        const uint64_t d = dynIdx - w;
                        dist = static_cast<uint32_t>(
                            std::min<uint64_t>(d, MaxDependencyDistance));
                    }
                }
                nodeStats->slots[slot].depDist[s].record(dist);
                if (edgeStats)
                    edgeStats->slots[slot].depDist[s].record(dist);
            }
        }

        // I-side locality events, on each fetch-line change (the same
        // policy the execution-driven fetch engine uses).
        if (!opts.perfectCaches && nodeStats) {
            const uint64_t addr = isa::instAddr(pc);
            const uint64_t line = addr / cfg.il1.lineBytes;
            if (line != lastLine) {
                lastLine = line;
                const cpu::MemAccessResult res = mem.instAccess(addr);
                for (QBlockStats *qb : {nodeStats, edgeStats}) {
                    if (!qb)
                        continue;
                    SlotStats &ss = qb->slots[slot];
                    ++ss.il1Access;
                    if (res.l1Miss)
                        ++ss.il1Miss;
                    if (res.l2Miss)
                        ++ss.il2Miss;
                    if (res.tlbMiss)
                        ++ss.itlbMiss;
                }
            }
        }

        const bool ctrl = isa::isControlFlow(inst.op);
        const bool isHalt = inst.op == isa::Opcode::HALT;

        const isa::ExecutedInst rec = emu.step();
        ++executed;

        // D-side locality events.
        if (rec.isMem && !opts.perfectCaches) {
            const cpu::MemAccessResult res =
                mem.dataAccess(rec.memAddr, isa::isStore(inst.op));
            if (isa::isLoad(inst.op) && nodeStats) {
                for (QBlockStats *qb : {nodeStats, edgeStats}) {
                    if (!qb)
                        continue;
                    SlotStats &ss = qb->slots[slot];
                    if (res.l1Miss)
                        ++ss.dl1Miss;
                    if (res.l2Miss)
                        ++ss.dl2Miss;
                    if (res.tlbMiss)
                        ++ss.dtlbMiss;
                }
            }
        }

        // Branch characteristics.
        if (ctrl && !isHalt && nodeStats) {
            if (opts.perfectBpred) {
                recordBranchEvent(nodeStats, edgeStats, rec.taken,
                                  BranchOutcome::Correct);
            } else if (!delayed) {
                const BranchPrediction pred = bpred.predict(pc, inst);
                const BranchOutcome outcome = BranchUnit::classify(
                    inst, pred, rec.taken, rec.nextPc, pc + 1);
                bpred.update(pc, inst, rec.taken, rec.nextPc);
                recordBranchEvent(nodeStats, edgeStats, rec.taken,
                                  outcome);
            } else {
                FifoEntry e;
                e.isBranch = true;
                e.pc = pc;
                e.taken = rec.taken;
                e.nextPc = rec.nextPc;
                e.nodeStats = nodeStats;
                e.edgeStats = edgeStats;
                fifo.insert(e);
            }
        } else if (delayed && !opts.perfectBpred) {
            FifoEntry e;
            e.pc = pc;
            fifo.insert(e);
        }

        // RAW tracking update.
        const isa::RegRef d = isa::destReg(inst);
        if (d.valid() &&
            !(d.space == isa::RegSpace::Int && d.index == isa::RegZero)) {
            lastWriter[static_cast<int>(d.space)][d.index] = dynIdx;
        }
    }

    fifo.drain();
    profile.instructions = executed;
    return profile;
}

} // namespace ssim::core
