#include "profile.hh"

#include <algorithm>

namespace ssim::core
{

SfgBuilder::SfgBuilder(StatisticalProfile &profile)
    : profile_(&profile),
      gramSize_(std::max(profile.order, 1)),
      useEdges_(profile.order >= 1)
{
}

SfgBuilder::BlockStats
SfgBuilder::startBlock(uint32_t blockId, size_t blockLen)
{
    if (history_.size() == gramSize_)
        history_.erase(history_.begin());
    history_.push_back(blockId);
    if (history_.size() < gramSize_)
        return {};

    BlockStats out;

    if (useEdges_ && !prevGram_.empty()) {
        StatisticalProfile::Node &prev = profile_->nodes[prevGram_];
        StatisticalProfile::Edge &edge = prev.edges[blockId];
        ++edge.count;
        edge.stats.ensureSlots(blockLen);
        ++edge.stats.occurrences;
        out.edge = &edge.stats;
    }

    StatisticalProfile::Node &node = profile_->nodes[history_];
    ++node.occurrences;
    node.entryStats.ensureSlots(blockLen);
    ++node.entryStats.occurrences;
    out.node = &node.entryStats;

    prevGram_ = history_;
    ++profile_->dynamicBlocks;
    return out;
}

size_t
StatisticalProfile::qualifiedBlockCount() const
{
    if (order == 0)
        return nodes.size();
    size_t n = 0;
    for (const auto &[gram, node] : nodes)
        n += node.edges.size();
    return n;
}

BranchStats
StatisticalProfile::totalBranchStats() const
{
    // Node entry statistics hold the k-gram marginal, so summing them
    // covers every recorded event exactly once.
    BranchStats total;
    for (const auto &[gram, node] : nodes) {
        total.count += node.entryStats.branch.count;
        total.taken += node.entryStats.branch.taken;
        total.redirect += node.entryStats.branch.redirect;
        total.mispredict += node.entryStats.branch.mispredict;
    }
    return total;
}

double
StatisticalProfile::mispredictsPerKilo() const
{
    if (instructions == 0)
        return 0.0;
    const BranchStats total = totalBranchStats();
    return 1000.0 * static_cast<double>(total.mispredict) /
        static_cast<double>(instructions);
}

} // namespace ssim::core
