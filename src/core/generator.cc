#include "generator.hh"

#include <algorithm>
#include <chrono>
#include <unordered_map>
#include <vector>

#include "util/error.hh"
#include "util/logging.hh"

namespace ssim::core
{

namespace
{

uint64_t
ceilPow2(uint64_t v)
{
    uint64_t p = 1;
    while (p < v)
        p <<= 1;
    return p;
}

const std::string &
emptyString()
{
    static const std::string s;
    return s;
}

} // namespace

void
GenerationOptions::validate() const
{
    if (reductionFactor == 0) {
        throw Error(ErrorCategory::InvalidConfig,
                    "generation options: reductionFactor = 0 is "
                    "undefined (R >= 1; R = 1 reproduces the full "
                    "profiled length)");
    }
    if (maxDependencyRetries == 0) {
        throw Error(ErrorCategory::InvalidConfig,
                    "generation options: maxDependencyRetries = 0 "
                    "would drop every dependency (the paper uses "
                    "1000)");
    }
}

StreamingGenerator::StreamingGenerator(
    const StatisticalProfile &profile, const GenerationOptions &opts,
    uint64_t minLookback)
    : profile_(&profile), opts_(opts), rng_(opts.seed)
{
    opts_.validate();
    const auto t0 = std::chrono::steady_clock::now();
    buildReducedGraph();
    metrics_.buildSeconds = std::chrono::duration<double>(
        std::chrono::steady_clock::now() - t0).count();

    // The expected synthetic trace length: a 1/R fraction of the
    // profiled stream.
    target_ = std::max<uint64_t>(
        1, profile.instructions / std::max<uint64_t>(
               1, opts.reductionFactor));

    // Ring invariants: the window behind the newest position must
    // cover the generator's own dependency sampling lookback
    // (MaxDependencyDistance) and the consumer's requested rewind,
    // and one whole block emission may land past the requested
    // position, so the largest block is extra headroom on top of
    // either. Power-of-two capacity keeps position->slot a mask.
    const uint64_t need = std::max<uint64_t>(
        {minLookback + maxBlockLen_,
         uint64_t{MaxDependencyDistance} + maxBlockLen_ + 1,
         DefaultRingCapacity});
    ring_.resize(ceilPow2(need));
    ringMask_ = ring_.size() - 1;
    lookback_ = ring_.size() - maxBlockLen_;
}

const std::string &
StreamingGenerator::benchmark() const
{
    return profile_ ? profile_->benchmark : emptyString();
}

void
StreamingGenerator::buildReducedGraph()
{
    const uint64_t r = std::max<uint64_t>(1, opts_.reductionFactor);

    for (const BlockShape &shape : profile_->shapes)
        maxBlockLen_ = std::max<uint64_t>(maxBlockLen_, shape.size());

    // Canonical (sorted) node order: generation must be a pure
    // function of the profile's content, independent of hash-map
    // iteration order (so a saved/reloaded profile reproduces the
    // same trace for the same seed).
    std::vector<const Gram *> grams;
    grams.reserve(profile_->nodes.size());
    for (const auto &[gram, node] : profile_->nodes) {
        if (node.occurrences / r > 0)
            grams.push_back(&gram);
    }
    std::sort(grams.begin(), grams.end(),
              [](const Gram *a, const Gram *b) { return *a < *b; });

    std::unordered_map<Gram, uint32_t, GramHash> index;
    std::vector<uint64_t> occurrences;
    occurrences.reserve(grams.size());
    for (const Gram *gram : grams) {
        const auto &node = profile_->nodes.at(*gram);
        const uint32_t idx = static_cast<uint32_t>(nodes_.size());
        index.emplace(*gram, idx);
        ReducedNode rn;
        rn.blockId = StatisticalProfile::blockOf(*gram);
        rn.entryPlan = makePlan(rn.blockId, node.entryStats);
        occurrences.push_back(node.occurrences / r);
        nodes_.push_back(std::move(rn));
    }
    occupancy_.build(occurrences);

    // Surviving edges (both endpoints alive), in ascending
    // next-block order for the same reason.
    for (const Gram *gram : grams) {
        const auto &node = profile_->nodes.at(*gram);
        ReducedNode &rn = nodes_[index.at(*gram)];
        std::vector<uint32_t> nextBlocks;
        nextBlocks.reserve(node.edges.size());
        for (const auto &[nextBlock, edge] : node.edges)
            nextBlocks.push_back(nextBlock);
        std::sort(nextBlocks.begin(), nextBlocks.end());
        std::vector<uint64_t> weights;
        for (uint32_t nextBlock : nextBlocks) {
            if (profile_->order == 0)
                continue;  // k = 0: no edges by definition
            const auto &edge = node.edges.at(nextBlock);
            Gram destGram = *gram;
            destGram.erase(destGram.begin());
            destGram.push_back(nextBlock);
            const auto dit = index.find(destGram);
            if (dit == index.end())
                continue;
            rn.edges.push_back(
                {dit->second, makePlan(nodes_[dit->second].blockId,
                                       edge.stats)});
            weights.push_back(edge.count);
        }
        rn.edgeSampler.build(weights);
        ++metrics_.aliasTables;
    }
}

/**
 * Freeze one qualified block's statistics into an emission plan: all
 * probability ratios the paper's steps 3-8 need, computed once here
 * instead of per emitted instruction, plus prepared (alias-backed)
 * dependency-distance distributions.
 */
const StreamingGenerator::EmissionPlan *
StreamingGenerator::makePlan(uint32_t blockId,
                             const QBlockStats &stats)
{
    const BlockShape &shape = profile_->shapes[blockId];
    const double occ = static_cast<double>(
        std::max<uint64_t>(1, stats.occurrences));

    EmissionPlan plan;
    plan.slots.resize(shape.size());
    for (size_t i = 0; i < shape.size(); ++i) {
        const SlotShape &slot = shape[i];
        SlotPlan &sp = plan.slots[i];
        sp.proto.cls = slot.cls;
        sp.proto.numSrcs = slot.numSrcs;
        sp.proto.hasDest = slot.hasDest;
        sp.proto.isLoad = slot.isLoad;
        sp.proto.isStore = slot.isStore;
        sp.proto.isCtrl = slot.isCtrl;
        sp.proto.blockId = blockId;

        if (i >= stats.slots.size())
            continue;
        const SlotStats &ss = stats.slots[i];
        sp.hasStats = true;
        for (int p = 0; p < 2; ++p) {
            if (!ss.depDist[p].empty()) {
                ss.depDist[p].prepare();
                sp.dep[p] = &ss.depDist[p];
                ++metrics_.aliasTables;
            }
        }
        sp.pIl1Access = static_cast<double>(ss.il1Access) / occ;
        if (ss.il1Access > 0) {
            sp.pIl1Miss = static_cast<double>(ss.il1Miss) /
                static_cast<double>(ss.il1Access);
            sp.pItlbMiss = static_cast<double>(ss.itlbMiss) /
                static_cast<double>(ss.il1Access);
        }
        if (ss.il1Miss > 0) {
            sp.pIl2Miss = static_cast<double>(ss.il2Miss) /
                static_cast<double>(ss.il1Miss);
        }
        if (slot.isLoad) {
            sp.pDl1Miss = static_cast<double>(ss.dl1Miss) / occ;
            if (ss.dl1Miss > 0) {
                sp.pDl2Miss = static_cast<double>(ss.dl2Miss) /
                    static_cast<double>(ss.dl1Miss);
            }
            sp.pDtlbMiss = static_cast<double>(ss.dtlbMiss) / occ;
        }
    }

    if (stats.branch.count > 0) {
        const BranchStats &b = stats.branch;
        const double total = static_cast<double>(b.count);
        plan.hasBranchStats = true;
        plan.pTaken = static_cast<double>(b.taken) / total;
        plan.pMispredict = static_cast<double>(b.mispredict) / total;
        plan.pMisOrRedirect = plan.pMispredict +
            static_cast<double>(b.redirect) / total;
    }

    plans_.push_back(std::move(plan));
    return &plans_.back();
}

const SynthInst *
StreamingGenerator::at(uint64_t pos)
{
    const uint64_t minValid =
        emitted_ > ring_.size() ? emitted_ - ring_.size() : 0;
    if (pos < minValid) {
        throw Error(ErrorCategory::Internal,
                    "StreamingGenerator: position " +
                        std::to_string(pos) +
                        " was evicted from the ring (oldest kept: " +
                        std::to_string(minValid) +
                        "); the consumer needs a larger lookback "
                        "window");
    }
    while (!finished_ && pos >= emitted_)
        stepBlock();
    if (pos >= emitted_)
        return nullptr;
    return &ring_[pos & ringMask_];
}

/** Advance the walk by one emitted basic block (steps 1, 2 and 9). */
void
StreamingGenerator::stepBlock()
{
    if (emitted_ >= target_) {
        finished_ = true;
        return;
    }
    while (true) {
        if (needRestart_) {
            // Step 1: pick a start node by remaining occurrence;
            // terminate when all occurrences are exhausted.
            if (occupancy_.totalWeight() == 0) {
                finished_ = true;
                return;
            }
            curNode_ = occupancy_.pick(rng_);
            ++metrics_.startPicks;
            needRestart_ = false;
            // Step 2: decrement and emit via the node's entry
            // statistics (a restart has no incoming edge to
            // condition on).
            occupancy_.add(curNode_, -1);
            emitBlock(*nodes_[curNode_].entryPlan);
            return;
        }
        ReducedNode &node = nodes_[curNode_];
        // Step 9: dead end -> restart at step 1.
        if (node.edges.empty()) {
            needRestart_ = true;
            ++metrics_.walkRestarts;
            continue;
        }
        const size_t pick = node.edgeSampler.sample(rng_);
        const ReducedNode::ReducedEdge &edge = node.edges[pick];
        if (occupancy_.weightOf(edge.destNode) == 0) {
            // Destination is exhausted; restart keeps the total
            // emission bounded by the reduced occurrence budget.
            needRestart_ = true;
            ++metrics_.walkRestarts;
            continue;
        }
        curNode_ = edge.destNode;
        occupancy_.add(curNode_, -1);
        emitBlock(*edge.plan);
        return;
    }
}

/** Steps 3-8: emit one basic block instance into the ring. */
void
StreamingGenerator::emitBlock(const EmissionPlan &plan)
{
    ++metrics_.blocks;
    for (const SlotPlan &sp : plan.slots) {
        SynthInst si = sp.proto;

        if (sp.hasStats) {
            // Step 4: dependency distances.
            for (int p = 0; p < si.numSrcs; ++p)
                si.depDist[p] = sampleDependency(sp.dep[p]);

            // Steps 5 and 7: cache and TLB hit/miss flags.
            si.il1Access = rng_.chance(sp.pIl1Access);
            if (si.il1Access) {
                si.il1Miss = rng_.chance(sp.pIl1Miss);
                if (si.il1Miss)
                    si.il2Miss = rng_.chance(sp.pIl2Miss);
                si.itlbMiss = rng_.chance(sp.pItlbMiss);
            }
            if (si.isLoad) {
                si.dl1Miss = rng_.chance(sp.pDl1Miss);
                if (si.dl1Miss)
                    si.dl2Miss = rng_.chance(sp.pDl2Miss);
                si.dtlbMiss = rng_.chance(sp.pDtlbMiss);
            }
        }

        // Step 6: the terminating branch's characteristics.
        if (si.isCtrl && sp.hasStats && plan.hasBranchStats) {
            si.taken = rng_.chance(plan.pTaken);
            const double u = rng_.uniform();
            if (u < plan.pMispredict)
                si.outcome = cpu::BranchOutcome::Mispredict;
            else if (u < plan.pMisOrRedirect)
                si.outcome = cpu::BranchOutcome::FetchRedirect;
            else
                si.outcome = cpu::BranchOutcome::Correct;
        }

        ring_[emitted_ & ringMask_] = si;   // step 8
        ++emitted_;
        ++metrics_.emitted;
    }
}

/**
 * Step 4: sample a dependency distance whose producer can actually
 * deliver a register value (not a branch/store).
 *
 * Rejection sampling is the paper's formulation and is O(1) when most
 * of the distribution's mass is valid — but some profiled
 * distributions concentrate their mass on distances whose producers
 * are stores or branches in the current dynamic context, and the
 * naive loop then burns its full retry budget (1000 draws) before
 * dropping the dependency. So: a short rejection burst for the
 * common case, then an exact draw from the distribution *conditioned
 * on validity* — one O(entries) scan, equivalent to letting the
 * rejection loop run forever, which is precisely what the paper's
 * large retry cap approximates. A dependency is squashed only when
 * no valid producer exists at all.
 */
uint16_t
StreamingGenerator::sampleDependency(const DiscreteDistribution *dist)
{
    if (!dist)
        return 0;
    const uint64_t pos = emitted_;
    const auto valid = [&](uint32_t d) {
        return d <= pos && ring_[(pos - d) & ringMask_].hasDest;
    };

    static constexpr uint32_t RejectionBurst = 16;
    const uint32_t burst =
        std::min<uint32_t>(RejectionBurst, opts_.maxDependencyRetries);
    for (uint32_t attempt = 0; attempt < burst; ++attempt) {
        const uint32_t d = dist->sample(rng_);
        if (d == 0)
            return 0;  // explicitly "no dependency"
        if (valid(d))
            return static_cast<uint16_t>(d);
        ++metrics_.depRetries;
    }

    // Exact fallback: total weight of the currently valid entries
    // (value 0 = "no dependency" is always valid), then one draw over
    // that conditional mass.
    const auto &entries = dist->entries();
    uint64_t validTotal = 0;
    for (const auto &[d, w] : entries)
        if (d == 0 || valid(d))
            validTotal += w;
    if (validTotal == 0) {
        ++metrics_.depSquashes;
        return 0;  // no producer can supply this value
    }
    uint64_t remaining = rng_.below(validTotal);
    for (const auto &[d, w] : entries) {
        if (d != 0 && !valid(d))
            continue;
        if (remaining < w)
            return static_cast<uint16_t>(d);
        remaining -= w;
    }
    ++metrics_.depSquashes;  // unreachable; defensive
    return 0;
}

SyntheticTrace
generateSyntheticTrace(const StatisticalProfile &profile,
                       const GenerationOptions &opts)
{
    opts.validate();
    StreamingGenerator gen(profile, opts);
    SyntheticTrace trace;
    trace.benchmark = profile.benchmark;
    trace.reductionFactor = opts.reductionFactor;
    trace.seed = opts.seed;
    // The walk emits whole blocks, so the final length may overshoot
    // the target by at most one block.
    trace.insts.reserve(gen.target() + 64);
    for (uint64_t pos = 0;; ++pos) {
        const SynthInst *si = gen.at(pos);
        if (!si)
            break;
        trace.insts.push_back(*si);
    }
    return trace;
}

} // namespace ssim::core
