#include "generator.hh"

#include <algorithm>

#include "util/error.hh"
#include "util/logging.hh"

namespace ssim::core
{

namespace
{

uint64_t
ceilPow2(uint64_t v)
{
    uint64_t p = 1;
    while (p < v)
        p <<= 1;
    return p;
}

GenerationOptions
optionsOf(const GenModel &model, uint64_t seed)
{
    GenerationOptions opts;
    opts.reductionFactor = model.reductionFactor();
    opts.seed = seed;
    opts.maxDependencyRetries = model.maxDependencyRetries();
    return opts;
}

} // namespace

StreamingGenerator::StreamingGenerator(
    const StatisticalProfile &profile, const GenerationOptions &opts,
    uint64_t minLookback)
    : model_(std::make_shared<const GenModel>(profile, opts)),
      opts_(opts), rng_(opts.seed)
{
    initRun(minLookback);
}

StreamingGenerator::StreamingGenerator(
    std::shared_ptr<const GenModel> model, uint64_t seed,
    uint64_t minLookback)
    : model_(std::move(model)),
      opts_(model_ ? optionsOf(*model_, seed) : GenerationOptions{}),
      rng_(seed)
{
    if (!model_) {
        throw Error(ErrorCategory::InvalidConfig,
                    "StreamingGenerator: null GenModel");
    }
    initRun(minLookback);
}

/**
 * Per-run setup over the (already built) model: the mutable occurrence
 * budget, the ring and the run's metrics baseline. Every cursor over
 * the same model starts from the same occurrence vector, so a shared
 * model replays exactly like a freshly built one.
 */
void
StreamingGenerator::initRun(uint64_t minLookback)
{
    occupancy_.build(model_->occurrences());
    target_ = model_->target();

    // Build-time counters are the model's: a cache-hit run publishes
    // the same deterministic alias-table count as a fresh build
    // (buildSeconds is wall clock and only ever reaches the trace
    // exporter, never the byte-compared registry).
    metrics_.aliasTables = model_->aliasTables();
    metrics_.buildSeconds = model_->buildSeconds();

    // Ring invariants: the window behind the newest position must
    // cover the generator's own dependency sampling lookback
    // (MaxDependencyDistance) and the consumer's requested rewind,
    // and one whole block emission may land past the requested
    // position, so the largest block is extra headroom on top of
    // either. Power-of-two capacity keeps position->slot a mask.
    const uint64_t maxBlockLen = model_->maxBlockLen();
    const uint64_t need = std::max<uint64_t>(
        {minLookback + maxBlockLen,
         uint64_t{MaxDependencyDistance} + maxBlockLen + 1,
         DefaultRingCapacity});
    ring_.resize(ceilPow2(need));
    ringMask_ = ring_.size() - 1;
    lookback_ = ring_.size() - maxBlockLen;
}

const SynthInst *
StreamingGenerator::at(uint64_t pos)
{
    const uint64_t minValid =
        emitted_ > ring_.size() ? emitted_ - ring_.size() : 0;
    if (pos < minValid) {
        throw Error(ErrorCategory::Internal,
                    "StreamingGenerator: position " +
                        std::to_string(pos) +
                        " was evicted from the ring (oldest kept: " +
                        std::to_string(minValid) +
                        "); the consumer needs a larger lookback "
                        "window");
    }
    while (!finished_ && pos >= emitted_)
        stepBlock();
    if (pos >= emitted_)
        return nullptr;
    return &ring_[pos & ringMask_];
}

/** Advance the walk by one emitted basic block (steps 1, 2 and 9). */
void
StreamingGenerator::stepBlock()
{
    if (emitted_ >= target_) {
        finished_ = true;
        return;
    }
    const std::vector<GenModel::ReducedNode> &nodes = model_->nodes();
    while (true) {
        if (needRestart_) {
            // Step 1: pick a start node by remaining occurrence;
            // terminate when all occurrences are exhausted.
            if (occupancy_.totalWeight() == 0) {
                finished_ = true;
                return;
            }
            curNode_ = occupancy_.pick(rng_);
            ++metrics_.startPicks;
            needRestart_ = false;
            // Step 2: decrement and emit via the node's entry
            // statistics (a restart has no incoming edge to
            // condition on).
            occupancy_.add(curNode_, -1);
            emitBlock(*nodes[curNode_].entryPlan);
            return;
        }
        const GenModel::ReducedNode &node = nodes[curNode_];
        // Step 9: dead end -> restart at step 1.
        if (node.edges.empty()) {
            needRestart_ = true;
            ++metrics_.walkRestarts;
            continue;
        }
        const size_t pick = node.edgeSampler.sample(rng_);
        const GenModel::ReducedNode::ReducedEdge &edge =
            node.edges[pick];
        if (occupancy_.weightOf(edge.destNode) == 0) {
            // Destination is exhausted; restart keeps the total
            // emission bounded by the reduced occurrence budget.
            needRestart_ = true;
            ++metrics_.walkRestarts;
            continue;
        }
        curNode_ = edge.destNode;
        occupancy_.add(curNode_, -1);
        emitBlock(*edge.plan);
        return;
    }
}

/** Steps 3-8: emit one basic block instance into the ring. */
void
StreamingGenerator::emitBlock(const GenModel::EmissionPlan &plan)
{
    ++metrics_.blocks;
    for (const GenModel::SlotPlan &sp : plan.slots) {
        SynthInst si = sp.proto;

        if (sp.hasStats) {
            // Step 4: dependency distances.
            for (int p = 0; p < si.numSrcs; ++p)
                si.depDist[p] = sampleDependency(sp.dep[p]);

            // Steps 5 and 7: cache and TLB hit/miss flags.
            si.il1Access = rng_.chance(sp.pIl1Access);
            if (si.il1Access) {
                si.il1Miss = rng_.chance(sp.pIl1Miss);
                if (si.il1Miss)
                    si.il2Miss = rng_.chance(sp.pIl2Miss);
                si.itlbMiss = rng_.chance(sp.pItlbMiss);
            }
            if (si.isLoad) {
                si.dl1Miss = rng_.chance(sp.pDl1Miss);
                if (si.dl1Miss)
                    si.dl2Miss = rng_.chance(sp.pDl2Miss);
                si.dtlbMiss = rng_.chance(sp.pDtlbMiss);
            }
        }

        // Step 6: the terminating branch's characteristics.
        if (si.isCtrl && sp.hasStats && plan.hasBranchStats) {
            si.taken = rng_.chance(plan.pTaken);
            const double u = rng_.uniform();
            if (u < plan.pMispredict)
                si.outcome = cpu::BranchOutcome::Mispredict;
            else if (u < plan.pMisOrRedirect)
                si.outcome = cpu::BranchOutcome::FetchRedirect;
            else
                si.outcome = cpu::BranchOutcome::Correct;
        }

        ring_[emitted_ & ringMask_] = si;   // step 8
        ++emitted_;
        ++metrics_.emitted;
    }
}

/**
 * Step 4: sample a dependency distance whose producer can actually
 * deliver a register value (not a branch/store).
 *
 * Rejection sampling is the paper's formulation and is O(1) when most
 * of the distribution's mass is valid — but some profiled
 * distributions concentrate their mass on distances whose producers
 * are stores or branches in the current dynamic context, and the
 * naive loop then burns its full retry budget (1000 draws) before
 * dropping the dependency. So: a short rejection burst for the
 * common case, then an exact draw from the distribution *conditioned
 * on validity* — one O(entries) scan, equivalent to letting the
 * rejection loop run forever, which is precisely what the paper's
 * large retry cap approximates. A dependency is squashed only when
 * no valid producer exists at all.
 */
uint16_t
StreamingGenerator::sampleDependency(const DiscreteDistribution *dist)
{
    if (!dist)
        return 0;
    const uint64_t pos = emitted_;
    const auto valid = [&](uint32_t d) {
        return d <= pos && ring_[(pos - d) & ringMask_].hasDest;
    };

    static constexpr uint32_t RejectionBurst = 16;
    const uint32_t burst =
        std::min<uint32_t>(RejectionBurst, opts_.maxDependencyRetries);
    for (uint32_t attempt = 0; attempt < burst; ++attempt) {
        const uint32_t d = dist->sample(rng_);
        if (d == 0)
            return 0;  // explicitly "no dependency"
        if (valid(d))
            return static_cast<uint16_t>(d);
        ++metrics_.depRetries;
    }

    // Exact fallback: total weight of the currently valid entries
    // (value 0 = "no dependency" is always valid), then one draw over
    // that conditional mass.
    const auto &entries = dist->entries();
    uint64_t validTotal = 0;
    for (const auto &[d, w] : entries)
        if (d == 0 || valid(d))
            validTotal += w;
    if (validTotal == 0) {
        ++metrics_.depSquashes;
        return 0;  // no producer can supply this value
    }
    uint64_t remaining = rng_.below(validTotal);
    for (const auto &[d, w] : entries) {
        if (d != 0 && !valid(d))
            continue;
        if (remaining < w)
            return static_cast<uint16_t>(d);
        remaining -= w;
    }
    ++metrics_.depSquashes;  // unreachable; defensive
    return 0;
}

SyntheticTrace
generateSyntheticTrace(const StatisticalProfile &profile,
                       const GenerationOptions &opts)
{
    opts.validate();
    StreamingGenerator gen(profile, opts);
    SyntheticTrace trace;
    trace.benchmark = profile.benchmark;
    trace.reductionFactor = opts.reductionFactor;
    trace.seed = opts.seed;
    // The walk emits whole blocks, so the final length may overshoot
    // the target by at most one block.
    trace.insts.reserve(gen.target() + 64);
    for (uint64_t pos = 0;; ++pos) {
        const SynthInst *si = gen.at(pos);
        if (!si)
            break;
        trace.insts.push_back(*si);
    }
    return trace;
}

} // namespace ssim::core
