#include "generator.hh"

#include <algorithm>
#include <vector>

#include "util/error.hh"
#include "util/logging.hh"

namespace ssim::core
{

namespace
{

/** One node of the reduced statistical flow graph. */
struct ReducedNode
{
    uint32_t blockId = 0;            ///< current block (gram tail)
    int64_t occurrences = 0;         ///< reduced, decremented on visit
    const QBlockStats *entryStats = nullptr;

    struct ReducedEdge
    {
        uint32_t destNode = 0;
        uint64_t count = 0;
        const QBlockStats *stats = nullptr;
    };
    std::vector<ReducedEdge> edges;
    WeightedPicker edgePicker;
};

/** The generation walk state and emission helpers. */
class Generator
{
  public:
    Generator(const StatisticalProfile &profile,
              const GenerationOptions &opts)
        : profile_(&profile), opts_(opts), rng_(opts.seed)
    {
        buildReducedGraph();
        // The expected synthetic trace length: a 1/R fraction of the
        // profiled stream.
        target_ = std::max<uint64_t>(
            1, profile.instructions / std::max<uint64_t>(
                   1, opts.reductionFactor));
    }

    SyntheticTrace
    run()
    {
        SyntheticTrace trace;
        trace.benchmark = profile_->benchmark;
        trace.reductionFactor = opts_.reductionFactor;
        trace.seed = opts_.seed;

        if (nodes_.empty())
            return trace;

        while (trace.insts.size() < target_) {
            // Step 1: pick a start node by occurrence; terminate when
            // all occurrences are exhausted.
            const int64_t start = pickStartNode();
            if (start < 0)
                break;
            walk(static_cast<size_t>(start), trace);
        }
        return trace;
    }

  private:
    void
    buildReducedGraph()
    {
        const uint64_t r = std::max<uint64_t>(1, opts_.reductionFactor);

        // Canonical (sorted) node order: generation must be a pure
        // function of the profile's content, independent of hash-map
        // iteration order (so a saved/reloaded profile reproduces the
        // same trace for the same seed).
        std::vector<const Gram *> grams;
        grams.reserve(profile_->nodes.size());
        for (const auto &[gram, node] : profile_->nodes) {
            if (node.occurrences / r > 0)
                grams.push_back(&gram);
        }
        std::sort(grams.begin(), grams.end(),
                  [](const Gram *a, const Gram *b) { return *a < *b; });

        std::unordered_map<Gram, uint32_t, GramHash> index;
        for (const Gram *gram : grams) {
            const auto &node = profile_->nodes.at(*gram);
            const uint32_t idx = static_cast<uint32_t>(nodes_.size());
            index.emplace(*gram, idx);
            ReducedNode rn;
            rn.blockId = StatisticalProfile::blockOf(*gram);
            rn.occurrences =
                static_cast<int64_t>(node.occurrences / r);
            rn.entryStats = &node.entryStats;
            nodes_.push_back(std::move(rn));
        }

        // Surviving edges (both endpoints alive), in ascending
        // next-block order for the same reason.
        for (const Gram *gram : grams) {
            const auto &node = profile_->nodes.at(*gram);
            ReducedNode &rn = nodes_[index.at(*gram)];
            std::vector<uint32_t> nextBlocks;
            nextBlocks.reserve(node.edges.size());
            for (const auto &[nextBlock, edge] : node.edges)
                nextBlocks.push_back(nextBlock);
            std::sort(nextBlocks.begin(), nextBlocks.end());
            for (uint32_t nextBlock : nextBlocks) {
                if (profile_->order == 0)
                    continue;  // k = 0: no edges by definition
                const auto &edge = node.edges.at(nextBlock);
                Gram destGram = *gram;
                destGram.erase(destGram.begin());
                destGram.push_back(nextBlock);
                const auto dit = index.find(destGram);
                if (dit == index.end())
                    continue;
                rn.edges.push_back({dit->second, edge.count,
                                    &edge.stats});
            }
            std::vector<uint64_t> weights;
            weights.reserve(rn.edges.size());
            for (const auto &e : rn.edges)
                weights.push_back(e.count);
            rn.edgePicker.build(weights);
        }
    }

    /** Pick a node weighted by remaining occurrences; -1 when dry. */
    int64_t
    pickStartNode()
    {
        std::vector<uint64_t> weights(nodes_.size());
        for (size_t i = 0; i < nodes_.size(); ++i) {
            weights[i] = nodes_[i].occurrences > 0
                ? static_cast<uint64_t>(nodes_[i].occurrences) : 0;
        }
        WeightedPicker picker;
        picker.build(weights);
        if (picker.totalWeight() == 0)
            return -1;
        return static_cast<int64_t>(picker.pick(rng_));
    }

    /** Walk from @p start until a dead end or the length target. */
    void
    walk(size_t start, SyntheticTrace &trace)
    {
        size_t cur = start;
        // Step 2: decrement and emit via the node's entry statistics
        // (the restart has no incoming edge to condition on).
        --nodes_[cur].occurrences;
        emitBlock(nodes_[cur].blockId, *nodes_[cur].entryStats, trace);

        while (trace.insts.size() < target_) {
            ReducedNode &node = nodes_[cur];
            // Step 9: dead end -> restart at step 1.
            if (node.edges.empty())
                return;
            const size_t pick = node.edgePicker.pick(rng_);
            const ReducedNode::ReducedEdge &edge = node.edges[pick];
            if (nodes_[edge.destNode].occurrences <= 0) {
                // Destination is exhausted; restart keeps the total
                // emission bounded by the reduced occurrence budget.
                return;
            }
            cur = edge.destNode;
            --nodes_[cur].occurrences;
            emitBlock(nodes_[cur].blockId, *edge.stats, trace);
        }
    }

    /** Steps 3-8: emit one basic block instance. */
    void
    emitBlock(uint32_t blockId, const QBlockStats &stats,
              SyntheticTrace &trace)
    {
        const BlockShape &shape = profile_->shapes[blockId];
        const uint64_t occ = std::max<uint64_t>(1, stats.occurrences);

        for (size_t i = 0; i < shape.size(); ++i) {
            const SlotShape &slot = shape[i];
            SynthInst si;
            si.cls = slot.cls;
            si.numSrcs = slot.numSrcs;
            si.hasDest = slot.hasDest;
            si.isLoad = slot.isLoad;
            si.isStore = slot.isStore;
            si.isCtrl = slot.isCtrl;
            si.blockId = blockId;

            const SlotStats *ss =
                i < stats.slots.size() ? &stats.slots[i] : nullptr;

            // Step 4: dependency distances.
            if (ss) {
                for (int p = 0; p < slot.numSrcs; ++p)
                    si.depDist[p] =
                        sampleDependency(ss->depDist[p], trace);
            }

            // Steps 5 and 7: cache and TLB hit/miss flags.
            if (ss) {
                const double pAccess =
                    static_cast<double>(ss->il1Access) / occ;
                si.il1Access = rng_.chance(pAccess);
                if (si.il1Access && ss->il1Access > 0) {
                    const double pMiss =
                        static_cast<double>(ss->il1Miss) / ss->il1Access;
                    si.il1Miss = rng_.chance(pMiss);
                    if (si.il1Miss && ss->il1Miss > 0) {
                        si.il2Miss = rng_.chance(
                            static_cast<double>(ss->il2Miss) /
                            ss->il1Miss);
                    }
                    si.itlbMiss = rng_.chance(
                        static_cast<double>(ss->itlbMiss) /
                        ss->il1Access);
                }
                if (slot.isLoad) {
                    si.dl1Miss = rng_.chance(
                        static_cast<double>(ss->dl1Miss) / occ);
                    if (si.dl1Miss && ss->dl1Miss > 0) {
                        si.dl2Miss = rng_.chance(
                            static_cast<double>(ss->dl2Miss) /
                            ss->dl1Miss);
                    }
                    si.dtlbMiss = rng_.chance(
                        static_cast<double>(ss->dtlbMiss) / occ);
                }
            }

            // Step 6: the terminating branch's characteristics.
            if (slot.isCtrl && ss && stats.branch.count > 0) {
                const BranchStats &b = stats.branch;
                const double total = static_cast<double>(b.count);
                si.taken = rng_.chance(b.taken / total);
                const double u = rng_.uniform();
                const double pMis = b.mispredict / total;
                const double pRedir = b.redirect / total;
                if (u < pMis)
                    si.outcome = cpu::BranchOutcome::Mispredict;
                else if (u < pMis + pRedir)
                    si.outcome = cpu::BranchOutcome::FetchRedirect;
                else
                    si.outcome = cpu::BranchOutcome::Correct;
            }

            trace.insts.push_back(si);  // step 8
        }
    }

    /**
     * Step 4: sample a dependency distance, retrying when the chosen
     * producer cannot produce a register value (branch/store).
     */
    uint16_t
    sampleDependency(const DiscreteDistribution &dist,
                     const SyntheticTrace &trace)
    {
        if (dist.empty())
            return 0;
        const size_t pos = trace.insts.size();
        for (uint32_t attempt = 0;
             attempt < opts_.maxDependencyRetries; ++attempt) {
            const uint32_t d = dist.sample(rng_);
            if (d == 0)
                return 0;  // explicitly "no dependency"
            if (d > pos)
                continue;  // would reach before the trace start
            if (trace.insts[pos - d].hasDest)
                return static_cast<uint16_t>(d);
        }
        return 0;  // squash the dependency (paper: after 1000 tries)
    }

    const StatisticalProfile *profile_;
    GenerationOptions opts_;
    Rng rng_;
    std::vector<ReducedNode> nodes_;
    uint64_t target_ = 0;
};

} // namespace

void
GenerationOptions::validate() const
{
    if (reductionFactor == 0) {
        throw Error(ErrorCategory::InvalidConfig,
                    "generation options: reductionFactor = 0 is "
                    "undefined (R >= 1; R = 1 reproduces the full "
                    "profiled length)");
    }
    if (maxDependencyRetries == 0) {
        throw Error(ErrorCategory::InvalidConfig,
                    "generation options: maxDependencyRetries = 0 "
                    "would drop every dependency (the paper uses "
                    "1000)");
    }
}

SyntheticTrace
generateSyntheticTrace(const StatisticalProfile &profile,
                       const GenerationOptions &opts)
{
    opts.validate();
    Generator gen(profile, opts);
    return gen.run();
}

} // namespace ssim::core
