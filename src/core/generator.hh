/**
 * @file
 * Synthetic trace generation (section 2.2): reduce the SFG by the
 * trace reduction factor R, then random-walk it with the paper's
 * nine-step algorithm, emitting annotated synthetic instructions.
 *
 * The seed-independent half of the machinery — the reduced graph,
 * frozen alias tables and per-slot EmissionPlans — lives in GenModel
 * (gen_model.hh), an immutable object many runs can share across
 * threads. StreamingGenerator is the per-run cursor over one model:
 * seed, RNG state, the remaining occurrence budget and a bounded
 * power-of-two ring of emitted instructions. It implements
 * SynthInstSource, so the synthetic-trace simulator consumes
 * instructions as they are generated; the generate+simulate hot path
 * holds O(ring) memory — independent of the trace length — and
 * generation overlaps simulation. generateSyntheticTrace() drains the
 * same machine into a vector for callers that want the whole trace
 * (tests, trace export), so the streamed and materialized paths emit
 * bit-identical instruction streams for the same seed by construction.
 *
 * Hot-path costs (see DESIGN.md "generation hot path"):
 *  - every probability ratio is precomputed once per reduced node /
 *    edge at model build time (EmissionPlan), not per emitted
 *    instruction;
 *  - edge and dependency-distance draws are O(1) alias-table samples;
 *  - walk restarts pick the start node through a Fenwick sampler in
 *    O(log N) with O(log N) occurrence decrements, replacing the
 *    O(N) picker rebuild per restart.
 */

#ifndef SSIM_CORE_GENERATOR_HH
#define SSIM_CORE_GENERATOR_HH

#include <cstdint>
#include <memory>
#include <vector>

#include "gen_model.hh"
#include "profile.hh"
#include "synth_trace.hh"
#include "util/distribution.hh"
#include "util/random.hh"

namespace ssim::core
{

/**
 * The reduction + generation walk as an incremental instruction
 * source (implements SynthInstSource): a per-run cursor over an
 * immutable GenModel.
 *
 * Instructions live in a bounded power-of-two ring; at(pos) generates
 * forward on demand and keeps at least lookback() positions behind
 * the newest requested position addressable, which covers both the
 * generator's own dependency sampling window (MaxDependencyDistance)
 * and the synthetic frontend's wrong-path replay rewind. Requesting a
 * position older than the window throws ssim::Error (Internal) — it
 * means the consumer was constructed with too small a ring, never a
 * silently corrupted stream.
 *
 * Determinism contract: the emitted stream is a pure function of
 * (profile content, options) — the same seed always reproduces the
 * same trace within one build of the simulator, whether the model was
 * built privately, fetched from the GenModelCache, or shared with
 * other concurrently-walking cursors. Stability of traces across
 * simulator versions is NOT promised (sampler improvements may
 * legally change the draw sequence).
 */
class StreamingGenerator final : public SynthInstSource
{
  public:
    /** Default ring capacity (entries); always rounded to >= this. */
    static constexpr uint64_t DefaultRingCapacity = 2048;

    /**
     * Build a private model from @p profile and walk it: the one-shot
     * convenience path, identical in behaviour to building a GenModel
     * and handing it to the model constructor below.
     * @param minLookback the revisit window the consumer needs; the
     *        ring is sized to guarantee it (plus the largest block).
     * @throws ssim::Error (InvalidConfig) via opts.validate().
     */
    StreamingGenerator(const StatisticalProfile &profile,
                       const GenerationOptions &opts,
                       uint64_t minLookback = DefaultRingCapacity);

    /**
     * Walk a shared (possibly cached, possibly concurrently-walked)
     * model with @p seed. The model is read-only to the cursor; any
     * number of cursors may walk the same model from different
     * threads concurrently.
     * @throws ssim::Error (InvalidConfig) on a null model.
     */
    StreamingGenerator(std::shared_ptr<const GenModel> model,
                       uint64_t seed,
                       uint64_t minLookback = DefaultRingCapacity);

    /** Instruction at @p pos, generating as needed; nullptr at end. */
    const SynthInst *at(uint64_t pos) override;

    /** Guaranteed revisit window behind the newest position. */
    uint64_t lookback() const override { return lookback_; }

    /** Expected trace length (profile instructions / R). */
    uint64_t target() const { return target_; }

    /** Instructions generated so far. */
    uint64_t generated() const { return emitted_; }

    /** True once the stream end is known and reached. */
    bool finished() const { return finished_; }

    /** Profiled benchmark name (trace metadata). */
    const std::string &benchmark() const { return model_->benchmark(); }

    /** Options the stream was built with (trace metadata). */
    const GenerationOptions &options() const { return opts_; }

    /** The (possibly shared) model this cursor walks. */
    const std::shared_ptr<const GenModel> &model() const
    {
        return model_;
    }

    const GeneratorMetrics &metrics() const { return metrics_; }

  private:
    void initRun(uint64_t minLookback);
    void stepBlock();
    void emitBlock(const GenModel::EmissionPlan &plan);
    uint16_t sampleDependency(const DiscreteDistribution *dist);

    std::shared_ptr<const GenModel> model_;
    GenerationOptions opts_;
    Rng rng_;

    FenwickSampler occupancy_;         ///< remaining occurrence budget

    std::vector<SynthInst> ring_;
    uint64_t ringMask_ = 0;
    uint64_t lookback_ = 0;

    uint64_t target_ = 0;
    uint64_t emitted_ = 0;
    size_t curNode_ = 0;
    bool needRestart_ = true;
    bool finished_ = false;

    GeneratorMetrics metrics_;
};

/**
 * Run the reduction + generation algorithm over @p profile and
 * materialize the whole trace (drains a StreamingGenerator, so the
 * result is identical to what the streamed path emits).
 */
SyntheticTrace generateSyntheticTrace(const StatisticalProfile &profile,
                                      const GenerationOptions &opts = {});

} // namespace ssim::core

#endif // SSIM_CORE_GENERATOR_HH
