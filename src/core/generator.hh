/**
 * @file
 * Synthetic trace generation (section 2.2): reduce the SFG by the
 * trace reduction factor R, then random-walk it with the paper's
 * nine-step algorithm, emitting annotated synthetic instructions.
 */

#ifndef SSIM_CORE_GENERATOR_HH
#define SSIM_CORE_GENERATOR_HH

#include <cstdint>

#include "profile.hh"
#include "synth_trace.hh"
#include "util/random.hh"

namespace ssim::core
{

/** Generation controls. */
struct GenerationOptions
{
    /**
     * Trace reduction factor R: node occurrences are divided by R and
     * zero-occurrence nodes removed (typical paper values: 1e3..1e5;
     * pick R so the synthetic trace has 1e5..1e6 instructions).
     */
    uint64_t reductionFactor = 1000;

    /** Random seed (each seed yields an independent trace). */
    uint64_t seed = 1;

    /**
     * Maximum resampling attempts when a drawn dependency lands on an
     * instruction without a destination register (step 4; the paper
     * uses 1000, after which the dependency is dropped).
     */
    uint32_t maxDependencyRetries = 1000;

    /**
     * @throws ssim::Error (InvalidConfig) for knobs the generation
     *         walk cannot honour (reduction factor 0, zero dependency
     *         retries).
     */
    void validate() const;
};

/** Run the reduction + generation algorithm over @p profile. */
SyntheticTrace generateSyntheticTrace(const StatisticalProfile &profile,
                                      const GenerationOptions &opts = {});

} // namespace ssim::core

#endif // SSIM_CORE_GENERATOR_HH
