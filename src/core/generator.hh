/**
 * @file
 * Synthetic trace generation (section 2.2): reduce the SFG by the
 * trace reduction factor R, then random-walk it with the paper's
 * nine-step algorithm, emitting annotated synthetic instructions.
 *
 * The walk is implemented by StreamingGenerator, an incremental
 * position-addressed instruction source behind a bounded ring buffer:
 * the synthetic-trace simulator consumes instructions as they are
 * generated, so the generate+simulate hot path holds O(ring) memory —
 * independent of the trace length — and generation overlaps
 * simulation. generateSyntheticTrace() drains the same machine into a
 * vector for callers that want the whole trace (tests, trace export),
 * so the streamed and materialized paths emit bit-identical
 * instruction streams for the same seed by construction.
 *
 * Hot-path costs (see DESIGN.md "generation hot path"):
 *  - every probability ratio is precomputed once per reduced node /
 *    edge at build time (EmissionPlan), not per emitted instruction;
 *  - edge and dependency-distance draws are O(1) alias-table samples;
 *  - walk restarts pick the start node through a Fenwick sampler in
 *    O(log N) with O(log N) occurrence decrements, replacing the
 *    O(N) picker rebuild per restart.
 */

#ifndef SSIM_CORE_GENERATOR_HH
#define SSIM_CORE_GENERATOR_HH

#include <cstdint>
#include <deque>
#include <vector>

#include "profile.hh"
#include "synth_trace.hh"
#include "util/distribution.hh"
#include "util/random.hh"

namespace ssim::core
{

/** Generation controls. */
struct GenerationOptions
{
    /**
     * Trace reduction factor R: node occurrences are divided by R and
     * zero-occurrence nodes removed (typical paper values: 1e3..1e5;
     * pick R so the synthetic trace has 1e5..1e6 instructions).
     */
    uint64_t reductionFactor = 1000;

    /** Random seed (each seed yields an independent trace). */
    uint64_t seed = 1;

    /**
     * Maximum resampling attempts when a drawn dependency lands on an
     * instruction without a destination register (step 4; the paper
     * uses 1000, after which the dependency is dropped).
     */
    uint32_t maxDependencyRetries = 1000;

    /**
     * @throws ssim::Error (InvalidConfig) for knobs the generation
     *         walk cannot honour (reduction factor 0, zero dependency
     *         retries).
     */
    void validate() const;
};

/** Counters the generator accumulates; published via core::ObsSink. */
struct GeneratorMetrics
{
    uint64_t emitted = 0;          ///< instructions produced so far
    uint64_t blocks = 0;           ///< basic-block instances emitted
    uint64_t startPicks = 0;       ///< step-1 start-node draws
    uint64_t walkRestarts = 0;     ///< dead ends + exhausted targets
    uint64_t depRetries = 0;       ///< step-4 resampling attempts
    uint64_t depSquashes = 0;      ///< dependencies dropped after retry
    uint64_t aliasTables = 0;      ///< alias tables frozen at build
    double buildSeconds = 0.0;     ///< reduced-graph + table build time
};

/**
 * The reduction + generation walk as an incremental instruction
 * source (implements SynthInstSource).
 *
 * Instructions live in a bounded power-of-two ring; at(pos) generates
 * forward on demand and keeps at least lookback() positions behind
 * the newest requested position addressable, which covers both the
 * generator's own dependency sampling window (MaxDependencyDistance)
 * and the synthetic frontend's wrong-path replay rewind. Requesting a
 * position older than the window throws ssim::Error (Internal) — it
 * means the consumer was constructed with too small a ring, never a
 * silently corrupted stream.
 *
 * Determinism contract: the emitted stream is a pure function of
 * (profile content, options) — the same seed always reproduces the
 * same trace within one build of the simulator. Stability of traces
 * across simulator versions is NOT promised (sampler improvements may
 * legally change the draw sequence).
 */
class StreamingGenerator final : public SynthInstSource
{
  public:
    /** Default ring capacity (entries); always rounded to >= this. */
    static constexpr uint64_t DefaultRingCapacity = 2048;

    /**
     * @param minLookback the revisit window the consumer needs; the
     *        ring is sized to guarantee it (plus the largest block).
     * @throws ssim::Error (InvalidConfig) via opts.validate().
     */
    StreamingGenerator(const StatisticalProfile &profile,
                       const GenerationOptions &opts,
                       uint64_t minLookback = DefaultRingCapacity);

    /** Instruction at @p pos, generating as needed; nullptr at end. */
    const SynthInst *at(uint64_t pos) override;

    /** Guaranteed revisit window behind the newest position. */
    uint64_t lookback() const override { return lookback_; }

    /** Expected trace length (profile instructions / R). */
    uint64_t target() const { return target_; }

    /** Instructions generated so far. */
    uint64_t generated() const { return emitted_; }

    /** True once the stream end is known and reached. */
    bool finished() const { return finished_; }

    /** Profiled benchmark name (trace metadata). */
    const std::string &benchmark() const;

    /** Options the stream was built with (trace metadata). */
    const GenerationOptions &options() const { return opts_; }

    const GeneratorMetrics &metrics() const { return metrics_; }

  private:
    /** Precomputed per-slot emission constants (no hot-path divides). */
    struct SlotPlan
    {
        SynthInst proto;         ///< static fields pre-filled
        const DiscreteDistribution *dep[2] = {nullptr, nullptr};
        double pIl1Access = 0.0;
        double pIl1Miss = 0.0;   ///< conditioned on an L1 access
        double pIl2Miss = 0.0;   ///< conditioned on an L1 miss
        double pItlbMiss = 0.0;  ///< conditioned on an L1 access
        double pDl1Miss = 0.0;
        double pDl2Miss = 0.0;   ///< conditioned on an L1 miss
        double pDtlbMiss = 0.0;
        bool hasStats = false;   ///< profiled slot statistics exist
    };

    /** One qualified block's emission recipe (entry or edge stats). */
    struct EmissionPlan
    {
        std::vector<SlotPlan> slots;
        double pTaken = 0.0;
        double pMispredict = 0.0;
        double pMisOrRedirect = 0.0;
        bool hasBranchStats = false;
    };

    /** One node of the reduced statistical flow graph. */
    struct ReducedNode
    {
        uint32_t blockId = 0;
        const EmissionPlan *entryPlan = nullptr;

        struct ReducedEdge
        {
            uint32_t destNode = 0;
            const EmissionPlan *plan = nullptr;
        };
        std::vector<ReducedEdge> edges;
        AliasTable edgeSampler;
    };

    void buildReducedGraph();
    const EmissionPlan *makePlan(uint32_t blockId,
                                 const QBlockStats &stats);
    void stepBlock();
    void emitBlock(const EmissionPlan &plan);
    uint16_t sampleDependency(const DiscreteDistribution *dist);

    const StatisticalProfile *profile_;
    GenerationOptions opts_;
    Rng rng_;

    std::vector<ReducedNode> nodes_;
    std::deque<EmissionPlan> plans_;   ///< stable storage
    FenwickSampler occupancy_;         ///< remaining occurrence budget

    std::vector<SynthInst> ring_;
    uint64_t ringMask_ = 0;
    uint64_t lookback_ = 0;
    uint64_t maxBlockLen_ = 0;

    uint64_t target_ = 0;
    uint64_t emitted_ = 0;
    size_t curNode_ = 0;
    bool needRestart_ = true;
    bool finished_ = false;

    GeneratorMetrics metrics_;
};

/**
 * Run the reduction + generation algorithm over @p profile and
 * materialize the whole trace (drains a StreamingGenerator, so the
 * result is identical to what the streamed path emits).
 */
SyntheticTrace generateSyntheticTrace(const StatisticalProfile &profile,
                                      const GenerationOptions &opts = {});

} // namespace ssim::core

#endif // SSIM_CORE_GENERATOR_HH
