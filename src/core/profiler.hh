/**
 * @file
 * The statistical profiler (the paper's microarchitecture-independent
 * profiling tool plus the specialized simulation of locality events,
 * Figure 1, step 1).
 *
 * One functional pass over the program collects, per qualified basic
 * block: instruction classes and operand counts (static), dependency
 * distance distributions (RAW, capped at 512), cache/TLB events from
 * the same cache models the execution-driven simulator uses, and
 * branch events from the same BranchUnit.
 *
 * Branch profiling supports both immediate update (predictor updated
 * right after each lookup) and the paper's delayed update (section
 * 2.1.3): lookups happen when an instruction enters a FIFO sized like
 * the instruction fetch queue, updates happen when it leaves, and a
 * misprediction detected at removal squashes and replays the FIFO
 * contents with fresh lookups.
 */

#ifndef SSIM_CORE_PROFILER_HH
#define SSIM_CORE_PROFILER_HH

#include <cstdint>

#include "cpu/config.hh"
#include "isa/program.hh"
#include "profile.hh"

namespace ssim::core
{

/** When the branch predictor is updated during profiling. */
enum class BranchProfilingMode : uint8_t
{
    ImmediateUpdate,
    DelayedUpdate,
};

/** Profiling controls. */
struct ProfileOptions
{
    int order = 1;                 ///< SFG order k
    BranchProfilingMode branchMode = BranchProfilingMode::DelayedUpdate;
    uint64_t skipInsts = 0;        ///< fast-forward before profiling
    uint64_t maxInsts = ~0ull;     ///< profile at most this many
    /**
     * Warm the caches and branch predictor functionally while
     * skipping, so a profile of a mid-stream window measures warm
     * locality behaviour (matching the execution-driven sampler).
     */
    bool warmupDuringSkip = true;
    bool perfectCaches = false;    ///< record every access as a hit
    bool perfectBpred = false;     ///< record every branch as correct

    /**
     * @throws ssim::Error (InvalidConfig) for knobs the profiler
     *         cannot honour (order outside [0, 8], an empty profiling
     *         window).
     */
    void validate() const;
};

/**
 * Build a statistical profile of @p prog.
 *
 * @param cfg supplies the branch predictor and cache configurations
 *        (microarchitecture-dependent characteristics are measured for
 *        these specific structures, section 2.1.2) and the IFQ size
 *        used as the delayed-update FIFO depth.
 */
StatisticalProfile buildProfile(const isa::Program &prog,
                                const cpu::CoreConfig &cfg,
                                const ProfileOptions &opts = {});

} // namespace ssim::core

#endif // SSIM_CORE_PROFILER_HH
