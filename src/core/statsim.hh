/**
 * @file
 * High-level statistical simulation API tying the three steps of
 * Figure 1 together: profile -> generate -> simulate, plus the
 * execution-driven reference simulation used for validation.
 *
 * This is the main entry point a downstream user of the library needs:
 *
 * @code
 *   using namespace ssim;
 *   isa::Program prog = workloads::build("zip");
 *   cpu::CoreConfig cfg = cpu::CoreConfig::baseline();
 *
 *   core::StatSimOptions opts;
 *   core::SimResult ss = core::runStatisticalSimulation(prog, cfg, opts);
 *   core::SimResult eds = core::runExecutionDriven(prog, cfg);
 *   // compare ss.ipc vs eds.ipc, ss.epc vs eds.epc, ...
 * @endcode
 */

#ifndef SSIM_CORE_STATSIM_HH
#define SSIM_CORE_STATSIM_HH

#include <cstdint>

#include <string>

#include "cpu/config.hh"
#include "cpu/eds_frontend.hh"
#include "cpu/pipeline/sim_stats.hh"
#include "generator.hh"
#include "isa/program.hh"
#include "obs/export_trace.hh"
#include "obs/metrics.hh"
#include "power/power_model.hh"
#include "profiler.hh"
#include "synth_trace.hh"

namespace ssim::core
{

/** Combined timing + power outcome of one simulation. */
struct SimResult
{
    cpu::SimStats stats;
    power::PowerReport power;

    double ipc = 0.0;
    double epc = 0.0;    ///< energy per cycle (average Watts)
    double edp = 0.0;    ///< EPC / IPC^2 (section 4.2.3)
};

/** Everything controlling a statistical simulation run. */
struct StatSimOptions
{
    ProfileOptions profile;
    GenerationOptions generation;
};

/**
 * Optional observability outputs for a run. With a registry attached
 * the core samples per-cycle telemetry and, after the run, publishes
 * the full stats/stall/occupancy/cache breakdown under @p prefix;
 * with a trace log attached, windowed IPC lands as counter events on
 * a per-cycle virtual timeline. Null members cost one pointer test
 * per simulated cycle.
 */
struct ObsSink
{
    obs::Registry *registry = nullptr;
    obs::TraceLog *trace = nullptr;
    std::string prefix = "core";
    uint32_t windowCycles = 10000;  ///< interval-IPC window (cycles)
};

/**
 * Error-handling contract: every entry point below validates its
 * configuration and options first and throws ssim::Error
 * (ErrorCategory::InvalidConfig) on a bad knob; nothing in the
 * library terminates the process. Sweeps that prefer branching over
 * unwinding can wrap calls in ssim::tryInvoke (see util/error.hh) or
 * use the experiment harness's try* wrappers.
 */

/** Score a finished core run with the power model. */
SimResult scoreRun(const cpu::SimStats &stats,
                   const cpu::CoreConfig &cfg);

/** Reference execution-driven simulation (sim-outorder analogue). */
SimResult runExecutionDriven(const isa::Program &prog,
                             const cpu::CoreConfig &cfg,
                             const cpu::EdsOptions &opts = {},
                             const ObsSink *sink = nullptr);

/** Simulate an already-generated synthetic trace on @p cfg. */
SimResult simulateSyntheticTrace(const SyntheticTrace &trace,
                                 const cpu::CoreConfig &cfg,
                                 const ObsSink *sink = nullptr);

/**
 * Simulate a synthetic instruction stream as it is generated — the
 * trace is never materialized; the core consumes instructions out of
 * the generator's bounded ring, so peak memory is independent of the
 * trace length. Emits exactly the trace generateSyntheticTrace()
 * would for the same profile + options (bit-identical stream).
 *
 * With a registry attached, the generator's own counters (restarts,
 * dependency retries/squashes, table build time) are published under
 * `<prefix>.gen.*` alongside the core's metrics.
 */
SimResult simulateSyntheticStream(StreamingGenerator &gen,
                                  const cpu::CoreConfig &cfg,
                                  const ObsSink *sink = nullptr);

/**
 * The full three-step statistical simulation: build the statistical
 * profile for @p cfg's predictor/cache structures, generate a
 * synthetic trace, and simulate it.
 */
SimResult runStatisticalSimulation(const isa::Program &prog,
                                   const cpu::CoreConfig &cfg,
                                   const StatSimOptions &opts = {},
                                   const ObsSink *sink = nullptr);

} // namespace ssim::core

#endif // SSIM_CORE_STATSIM_HH
