/**
 * @file
 * The synthetic trace (Figure 1, step 2 output): a sequence of
 * statistically generated instructions annotated with everything the
 * synthetic trace simulator needs — instruction class, dependency
 * distances, cache hit/miss flags and branch outcome flags.
 *
 * SynthInst is the unit of the generate->simulate hot path, so its
 * layout is packed: all boolean annotations are single-bit fields and
 * the whole record fits in 16 bytes (an R=1 run of a 10^8-instruction
 * profile materializes 1.6 GB instead of 2.4 GB — and the streaming
 * path below needs only a ring of them).
 */

#ifndef SSIM_CORE_SYNTH_TRACE_HH
#define SSIM_CORE_SYNTH_TRACE_HH

#include <cstdint>
#include <string>
#include <vector>

#include "cpu/bpred/branch_unit.hh"
#include "isa/isa.hh"

namespace ssim::core
{

/** One synthetic instruction. */
struct SynthInst
{
    uint32_t blockId = 0;     ///< originating static block (debugging)

    /**
     * RAW dependency distances (0 = none): this instruction depends on
     * the instruction `dist` positions earlier in the trace.
     */
    uint16_t depDist[2] = {0, 0};

    isa::InstClass cls = isa::InstClass::IntAlu;
    uint8_t numSrcs = 0;

    // Branch outcome for block-terminating branches (step 6).
    cpu::BranchOutcome outcome = cpu::BranchOutcome::Correct;

    // Static shape bits.
    bool hasDest : 1 = false;
    bool isLoad : 1 = false;
    bool isStore : 1 = false;
    bool isCtrl : 1 = false;

    // I-side flags (step 7 of the generation algorithm).
    bool il1Access : 1 = false;   ///< fetch touches a new cache line
    bool il1Miss : 1 = false;
    bool il2Miss : 1 = false;
    bool itlbMiss : 1 = false;

    // D-side flags for loads (step 5).
    bool dl1Miss : 1 = false;
    bool dl2Miss : 1 = false;
    bool dtlbMiss : 1 = false;

    // Branch direction for block-terminating branches (step 6).
    bool taken : 1 = false;

    bool operator==(const SynthInst &o) const
    {
        return blockId == o.blockId && depDist[0] == o.depDist[0] &&
            depDist[1] == o.depDist[1] && cls == o.cls &&
            numSrcs == o.numSrcs && outcome == o.outcome &&
            hasDest == o.hasDest && isLoad == o.isLoad &&
            isStore == o.isStore && isCtrl == o.isCtrl &&
            il1Access == o.il1Access && il1Miss == o.il1Miss &&
            il2Miss == o.il2Miss && itlbMiss == o.itlbMiss &&
            dl1Miss == o.dl1Miss && dl2Miss == o.dl2Miss &&
            dtlbMiss == o.dtlbMiss && taken == o.taken;
    }
};

static_assert(sizeof(SynthInst) <= 16,
              "SynthInst must stay packed: it is the unit of the "
              "materialized trace's memory footprint");

/** A complete synthetic trace. */
struct SyntheticTrace
{
    std::string benchmark;
    uint64_t reductionFactor = 0;
    uint64_t seed = 0;
    std::vector<SynthInst> insts;

    size_t size() const { return insts.size(); }
};

/**
 * Position-addressed synthetic instruction source: the seam between
 * the synthetic-trace frontend and where the instructions come from
 * (a materialized vector, or a StreamingGenerator producing them on
 * demand behind a bounded ring).
 *
 * Contract: positions are 0-based trace offsets. at(pos) returns the
 * instruction at @p pos, or nullptr when the stream ends before it.
 * Callers may revisit recent positions (wrong-path replay rewinds),
 * but only within the source's guaranteed window: at least
 * `lookback()` positions behind the highest position ever requested.
 * Asking for anything older is a caller bug and throws.
 */
class SynthInstSource
{
  public:
    virtual ~SynthInstSource() = default;

    /** Instruction at trace position @p pos; nullptr past the end. */
    virtual const SynthInst *at(uint64_t pos) = 0;

    /** Guaranteed revisit window behind the newest requested pos. */
    virtual uint64_t lookback() const = 0;
};

/** SynthInstSource over a materialized trace (full random access). */
class MaterializedSource final : public SynthInstSource
{
  public:
    explicit MaterializedSource(const SyntheticTrace &trace)
        : trace_(&trace)
    {
    }

    const SynthInst *
    at(uint64_t pos) override
    {
        return pos < trace_->insts.size() ? &trace_->insts[pos]
                                          : nullptr;
    }

    uint64_t
    lookback() const override
    {
        return ~0ull;
    }

  private:
    const SyntheticTrace *trace_;
};

} // namespace ssim::core

#endif // SSIM_CORE_SYNTH_TRACE_HH
