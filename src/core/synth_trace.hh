/**
 * @file
 * The synthetic trace (Figure 1, step 2 output): a sequence of
 * statistically generated instructions annotated with everything the
 * synthetic trace simulator needs — instruction class, dependency
 * distances, cache hit/miss flags and branch outcome flags.
 */

#ifndef SSIM_CORE_SYNTH_TRACE_HH
#define SSIM_CORE_SYNTH_TRACE_HH

#include <cstdint>
#include <string>
#include <vector>

#include "cpu/bpred/branch_unit.hh"
#include "isa/isa.hh"

namespace ssim::core
{

/** One synthetic instruction. */
struct SynthInst
{
    isa::InstClass cls = isa::InstClass::IntAlu;
    uint8_t numSrcs = 0;
    bool hasDest = false;
    bool isLoad = false;
    bool isStore = false;
    bool isCtrl = false;

    /**
     * RAW dependency distances (0 = none): this instruction depends on
     * the instruction `dist` positions earlier in the trace.
     */
    uint16_t depDist[2] = {0, 0};

    // I-side flags (step 7 of the generation algorithm).
    bool il1Access = false;   ///< fetch touches a new cache line
    bool il1Miss = false;
    bool il2Miss = false;
    bool itlbMiss = false;

    // D-side flags for loads (step 5).
    bool dl1Miss = false;
    bool dl2Miss = false;
    bool dtlbMiss = false;

    // Branch flags for block-terminating branches (step 6).
    bool taken = false;
    cpu::BranchOutcome outcome = cpu::BranchOutcome::Correct;

    uint32_t blockId = 0;     ///< originating static block (debugging)
};

/** A complete synthetic trace. */
struct SyntheticTrace
{
    std::string benchmark;
    uint64_t reductionFactor = 0;
    uint64_t seed = 0;
    std::vector<SynthInst> insts;

    size_t size() const { return insts.size(); }
};

} // namespace ssim::core

#endif // SSIM_CORE_SYNTH_TRACE_HH
