/**
 * @file
 * "oodb" — vortex archetype: an object store with a chained hash
 * index and pointer-chasing field traversals across a 512 KB object
 * arena (larger than the L1 D-cache, so queries miss frequently).
 *
 * Object layout (64 bytes): +0 key, +8 val, +16 next, +24/+32 fields.
 */

#include "isa/assembler.hh"
#include "workload.hh"

namespace ssim::workloads
{

isa::Program
buildOodb(uint64_t scale, uint64_t variant)
{
    const int64_t baseSeed = static_cast<int64_t>(
        inputSeed(0xdb5eed, variant) & 0x7fffffff);
    using namespace isa;

    constexpr int64_t tblBase = 0;             // 1024 buckets x 8B
    constexpr int64_t objBase = 8192;
    constexpr int64_t numObjects = 8192;       // 512 KB arena
    constexpr int64_t resultBase = objBase + numObjects * 64;

    Assembler as("oodb");
    as.setDataSize(resultBase + 64);

    const uint8_t i = 3, seed = 4, key = 5, addr = 6;
    const uint8_t t1 = 7, t2 = 8, t3 = 9, bucket = 10, entry = 11;
    const uint8_t q = 12, queries = 13, acc = 14, depth = 15, j = 16;
    const uint8_t qseed = 17;

    const int64_t lcgMul = 1103515245;

    auto lcg = [&](uint8_t s) {
        as.li(t1, lcgMul);
        as.mul(s, s, t1);
        as.addi(s, s, 12345);
    };

    // ---- build phase: allocate and index numObjects objects ----
    as.li(i, 0);
    as.li(seed, baseSeed);
    {
        Label build = as.newLabel(), buildEnd = as.newLabel();
        as.bind(build);
        as.li(t2, numObjects);
        as.bge(i, t2, buildEnd);
        lcg(seed);
        as.srli(key, seed, 12);
        as.li(t2, 0xfffff);
        as.and_(key, key, t2);

        as.slli(addr, i, 6);
        as.addi(addr, addr, objBase);
        as.sd(key, addr, 0);
        as.sd(i, addr, 8);
        as.sd(seed, addr, 24);
        as.srli(t2, seed, 8);
        as.sd(t2, addr, 32);

        // Head-insert into the hash chain.
        as.andi(bucket, key, 1023);
        as.slli(t2, bucket, 3);
        as.ld(t3, t2, tblBase);
        as.sd(t3, addr, 16);
        as.sd(addr, t2, tblBase);

        as.addi(i, i, 1);
        as.jmp(build);
        as.bind(buildEnd);
    }

    // ---- query phase ----
    // Queries regenerate the build-time key sequence (restarting the
    // LCG), so most lookups hit; every miss is an honest chain walk.
    as.li(q, 0);
    as.li(queries, static_cast<int64_t>(15000 * scale));
    as.li(acc, 0);
    as.li(qseed, baseSeed);
    {
        Label qLoop = as.newLabel(), qEnd = as.newLabel();
        Label walk = as.newLabel(), walkNext = as.newLabel();
        Label found = as.newLabel(), notFound = as.newLabel();
        Label chase = as.newLabel(), chaseEnd = as.newLabel();
        Label reseed = as.newLabel(), noReseed = as.newLabel();

        as.bind(qLoop);
        as.bge(q, queries, qEnd);

        // Restart the key sequence every numObjects queries.
        as.li(t2, numObjects - 1);
        as.and_(t3, q, t2);
        as.bne(t3, RegZero, noReseed);
        as.bind(reseed);
        as.li(qseed, baseSeed);
        as.bind(noReseed);

        lcg(qseed);
        as.srli(key, qseed, 12);
        as.li(t2, 0xfffff);
        as.and_(key, key, t2);

        as.andi(bucket, key, 1023);
        as.slli(t2, bucket, 3);
        as.ld(entry, t2, tblBase);

        as.bind(walk);
        as.beq(entry, RegZero, notFound);
        as.ld(t3, entry, 0);
        as.beq(t3, key, found);
        as.bind(walkNext);
        as.ld(entry, entry, 16);
        as.jmp(walk);

        as.bind(found);
        // Pointer chase: derive successive object slots from the
        // stored value and sum one field from each.
        as.ld(j, entry, 8);
        as.li(depth, 0);
        as.bind(chase);
        as.li(t2, 8);
        as.bge(depth, t2, chaseEnd);
        as.li(t2, numObjects - 1);
        as.and_(j, j, t2);
        as.slli(t3, j, 6);
        as.ld(t2, t3, objBase + 24);
        as.add(acc, acc, t2);
        // j = j * 13 + depth + 1
        as.li(t2, 13);
        as.mul(j, j, t2);
        as.add(j, j, depth);
        as.addi(j, j, 1);
        as.addi(depth, depth, 1);
        as.jmp(chase);
        as.bind(chaseEnd);

        as.bind(notFound);
        as.addi(q, q, 1);
        as.jmp(qLoop);
        as.bind(qEnd);
    }

    as.li(t1, resultBase);
    as.sd(acc, t1, 0);
    as.halt();
    return as.finish();
}

} // namespace ssim::workloads
