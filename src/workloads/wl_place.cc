/**
 * @file
 * "place" — twolf archetype: simulated-annealing placement on a 64x64
 * grid. Random cell swaps with a neighbour-difference cost function
 * and a temperature-controlled accept branch that is intrinsically
 * hard to predict.
 */

#include "isa/assembler.hh"
#include "workload.hh"

namespace ssim::workloads
{

isa::Program
buildPlace(uint64_t scale, uint64_t variant)
{
    using namespace isa;

    constexpr int64_t gridBase = 0;        // 64x64 byte cells
    constexpr int64_t resultBase = 8192;

    Assembler as("place");
    as.setDataSize(16 * 1024);

    const uint8_t it = 3, iters = 4, seed = 5;
    const uint8_t t1 = 6, t2 = 7, t3 = 8;
    const uint8_t p1 = 10, p2 = 11, v1 = 12, v2 = 13;
    const uint8_t before = 14, after = 15, temp = 16;
    const uint8_t x = 17, y = 18;
    const uint8_t aP = 20, aV = 21, rCost = 22;  // localCost arg/ret

    Label localCost = as.newLabel();
    Label mainStart = as.newLabel();
    as.jmp(mainStart);

    // ---- localCost(aP = cell index, aV = value) -> rCost ----
    // Sum of |aV - neighbour| over the up-to-4 neighbours.
    {
        Label noLeft = as.newLabel(), noRight = as.newLabel();
        Label noUp = as.newLabel(), noDown = as.newLabel();
        Label lOk = as.newLabel(), rOk = as.newLabel();
        Label uOk = as.newLabel(), dOk = as.newLabel();
        as.bind(localCost);
        as.andi(x, aP, 63);
        as.srli(y, aP, 6);
        as.li(rCost, 0);

        as.beq(x, RegZero, noLeft);
        as.lb(t1, aP, gridBase - 1);
        as.sub(t1, aV, t1);
        as.bge(t1, RegZero, lOk);
        as.sub(t1, RegZero, t1);
        as.bind(lOk);
        as.add(rCost, rCost, t1);
        as.bind(noLeft);

        as.slti(t2, x, 63);
        as.beq(t2, RegZero, noRight);
        as.lb(t1, aP, gridBase + 1);
        as.sub(t1, aV, t1);
        as.bge(t1, RegZero, rOk);
        as.sub(t1, RegZero, t1);
        as.bind(rOk);
        as.add(rCost, rCost, t1);
        as.bind(noRight);

        as.beq(y, RegZero, noUp);
        as.lb(t1, aP, gridBase - 64);
        as.sub(t1, aV, t1);
        as.bge(t1, RegZero, uOk);
        as.sub(t1, RegZero, t1);
        as.bind(uOk);
        as.add(rCost, rCost, t1);
        as.bind(noUp);

        as.slti(t2, y, 63);
        as.beq(t2, RegZero, noDown);
        as.lb(t1, aP, gridBase + 64);
        as.sub(t1, aV, t1);
        as.bge(t1, RegZero, dOk);
        as.sub(t1, RegZero, t1);
        as.bind(dOk);
        as.add(rCost, rCost, t1);
        as.bind(noDown);
        as.ret();
    }

    as.bind(mainStart);
    as.li(seed, static_cast<int64_t>(
        inputSeed(0x7201f, variant) & 0x7fffffff));
    as.li(it, 0);
    as.li(iters, static_cast<int64_t>(20000 * scale));
    as.li(temp, 200);

    // Initialize the grid with LCG values.
    {
        Label fill = as.newLabel(), fillEnd = as.newLabel();
        as.li(t1, 0);
        as.bind(fill);
        as.li(t2, 4096);
        as.bge(t1, t2, fillEnd);
        as.li(t2, 1103515245);
        as.mul(seed, seed, t2);
        as.addi(seed, seed, 12345);
        as.srli(t2, seed, 16);
        as.andi(t2, t2, 63);
        as.sb(t2, t1, gridBase);
        as.addi(t1, t1, 1);
        as.jmp(fill);
        as.bind(fillEnd);
    }

    // ---- annealing loop ----
    {
        Label loop = as.newLabel(), loopEnd = as.newLabel();
        Label accept = as.newLabel(), next = as.newLabel();
        Label noDecay = as.newLabel();
        as.bind(loop);
        as.bge(it, iters, loopEnd);

        // Pick two random cells.
        as.li(t1, 1103515245);
        as.mul(seed, seed, t1);
        as.addi(seed, seed, 12345);
        as.srli(p1, seed, 16);
        as.andi(p1, p1, 4095);
        as.li(t1, 1103515245);
        as.mul(seed, seed, t1);
        as.addi(seed, seed, 12345);
        as.srli(p2, seed, 16);
        as.andi(p2, p2, 4095);
        as.lb(v1, p1, gridBase);
        as.lb(v2, p2, gridBase);

        // Cost before and after the hypothetical swap.
        as.mov(aP, p1);
        as.mov(aV, v1);
        as.call(localCost);
        as.mov(before, rCost);
        as.mov(aP, p2);
        as.mov(aV, v2);
        as.call(localCost);
        as.add(before, before, rCost);
        as.mov(aP, p1);
        as.mov(aV, v2);
        as.call(localCost);
        as.mov(after, rCost);
        as.mov(aP, p2);
        as.mov(aV, v1);
        as.call(localCost);
        as.add(after, after, rCost);

        as.sub(t1, after, before);
        as.blt(t1, RegZero, accept);
        // Metropolis-style probabilistic accept.
        as.li(t1, 1103515245);
        as.mul(seed, seed, t1);
        as.addi(seed, seed, 12345);
        as.srli(t2, seed, 20);
        as.andi(t2, t2, 255);
        as.blt(t2, temp, accept);
        as.jmp(next);
        as.bind(accept);
        as.sb(v2, p1, gridBase);
        as.sb(v1, p2, gridBase);
        as.bind(next);

        // Cool down once every 1024 iterations.
        as.andi(t2, it, 1023);
        as.bne(t2, RegZero, noDecay);
        as.slti(t3, temp, 2);
        as.bne(t3, RegZero, noDecay);
        as.addi(temp, temp, -1);
        as.bind(noDecay);

        as.addi(it, it, 1);
        as.jmp(loop);
        as.bind(loopEnd);
    }

    // Final cost sweep over the whole grid.
    {
        Label sweep = as.newLabel(), sweepEnd = as.newLabel();
        const uint8_t acc = 23;
        as.li(acc, 0);
        as.li(t1, 0);
        as.bind(sweep);
        as.li(t2, 4096);
        as.bge(t1, t2, sweepEnd);
        as.mov(aP, t1);
        as.lb(aV, t1, gridBase);
        as.mov(t3, t1);
        as.call(localCost);
        as.mov(t1, t3);
        as.add(acc, acc, rCost);
        as.addi(t1, t1, 1);
        as.jmp(sweep);
        as.bind(sweepEnd);
        as.li(t1, resultBase);
        as.sd(acc, t1, 0);
    }

    as.halt();
    return as.finish();
}

} // namespace ssim::workloads
