/**
 * @file
 * "route" — vpr archetype: breadth-first maze routing on a 64x64 grid
 * with random obstacles. Wavefront expansion with a circular work
 * queue, bounds checks and visited tests — irregular loads/stores and
 * branchy inner loops.
 */

#include "isa/assembler.hh"
#include "workload.hh"

namespace ssim::workloads
{

isa::Program
buildRoute(uint64_t scale, uint64_t variant)
{
    using namespace isa;

    constexpr int64_t occBase = 0;         // 4096 occupancy bytes
    constexpr int64_t distBase = 4096;     // 4096 wave-distance bytes
    constexpr int64_t queueBase = 8192;    // 4096 x 8B work queue
    constexpr int64_t resultBase = queueBase + 4096 * 8;

    Assembler as("route");
    as.setDataSize(resultBase + 64);

    const uint8_t net = 3, nets = 4, seed = 5;
    const uint8_t t1 = 6, t2 = 7, t3 = 8;
    const uint8_t src = 9, dst = 10, qh = 11, qt = 12;
    const uint8_t cur = 13, x = 14, y = 15, d = 16, pops = 17;
    const uint8_t acc = 18, nb = 19;

    auto lcg = [&]() {
        as.li(t1, 1103515245);
        as.mul(seed, seed, t1);
        as.addi(seed, seed, 12345);
    };

    /** Visit neighbour `nb`: mark and enqueue if free and unseen. */
    auto tryNeighbour = [&]() {
        Label skip = as.newLabel();
        as.lb(t1, nb, occBase);
        as.bne(t1, RegZero, skip);
        as.lb(t1, nb, distBase);
        as.bne(t1, RegZero, skip);
        as.sb(d, nb, distBase);
        as.slli(t1, qt, 3);
        as.sd(nb, t1, queueBase);
        as.addi(qt, qt, 1);
        as.bind(skip);
    };

    // ---- obstacles: ~25% of cells occupied ----
    as.li(seed, static_cast<int64_t>(
        inputSeed(0x60075, variant) & 0x7fffffff));
    {
        Label fill = as.newLabel(), fillEnd = as.newLabel();
        as.li(t2, 0);
        as.bind(fill);
        as.li(t3, 4096);
        as.bge(t2, t3, fillEnd);
        lcg();
        as.srli(t3, seed, 16);
        as.andi(t3, t3, 3);
        as.slti(t3, t3, 1);          // occupied iff the draw was 0
        as.sb(t3, t2, occBase);
        as.addi(t2, t2, 1);
        as.jmp(fill);
        as.bind(fillEnd);
    }

    // ---- route a series of nets ----
    as.li(net, 0);
    as.li(nets, static_cast<int64_t>(24 * scale));
    as.li(acc, 0);
    {
        Label netLoop = as.newLabel(), netEnd = as.newLabel();
        Label clr = as.newLabel(), clrEnd = as.newLabel();
        Label bfsLoop = as.newLabel(), bfsEnd = as.newLabel();
        Label nLeft = as.newLabel(), nRight = as.newLabel();
        Label nUp = as.newLabel(), nDown = as.newLabel();

        as.bind(netLoop);
        as.bge(net, nets, netEnd);

        // Clear the wave distances (8 bytes per store).
        as.li(t2, 0);
        as.bind(clr);
        as.li(t1, 512);
        as.bge(t2, t1, clrEnd);
        as.slli(t3, t2, 3);
        as.sd(RegZero, t3, distBase);
        as.addi(t2, t2, 1);
        as.jmp(clr);
        as.bind(clrEnd);

        // Random terminals; force both cells free.
        lcg();
        as.srli(src, seed, 16);
        as.andi(src, src, 4095);
        lcg();
        as.srli(dst, seed, 16);
        as.andi(dst, dst, 4095);
        as.sb(RegZero, src, occBase);
        as.sb(RegZero, dst, occBase);

        as.li(t1, 1);
        as.sb(t1, src, distBase);
        as.li(qh, 0);
        as.li(qt, 0);
        as.slli(t1, qt, 3);
        as.sd(src, t1, queueBase);
        as.addi(qt, qt, 1);
        as.li(pops, 0);

        as.bind(bfsLoop);
        as.bge(qh, qt, bfsEnd);
        as.li(t1, 900);
        as.bge(pops, t1, bfsEnd);
        as.slli(t1, qh, 3);
        as.ld(cur, t1, queueBase);
        as.addi(qh, qh, 1);
        as.addi(pops, pops, 1);
        as.beq(cur, dst, bfsEnd);

        as.andi(x, cur, 63);
        as.srli(y, cur, 6);
        as.lb(d, cur, distBase);
        as.addi(d, d, 1);
        as.andi(d, d, 255);

        as.beq(x, RegZero, nLeft);
        as.addi(nb, cur, -1);
        tryNeighbour();
        as.bind(nLeft);

        as.slti(t1, x, 63);
        as.beq(t1, RegZero, nRight);
        as.addi(nb, cur, 1);
        tryNeighbour();
        as.bind(nRight);

        as.beq(y, RegZero, nUp);
        as.addi(nb, cur, -64);
        tryNeighbour();
        as.bind(nUp);

        as.slti(t1, y, 63);
        as.beq(t1, RegZero, nDown);
        as.addi(nb, cur, 64);
        tryNeighbour();
        as.bind(nDown);

        as.jmp(bfsLoop);
        as.bind(bfsEnd);

        as.lb(t1, dst, distBase);
        as.add(acc, acc, t1);
        as.addi(net, net, 1);
        as.jmp(netLoop);
        as.bind(netEnd);
    }

    as.li(t1, resultBase);
    as.sd(acc, t1, 0);
    as.halt();
    return as.finish();
}

} // namespace ssim::workloads
