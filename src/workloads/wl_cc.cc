/**
 * @file
 * "cc" — gcc archetype: a tokenizer plus shunting-yard expression
 * compiler/evaluator over generated source text. Characterized by a
 * large number of distinct basic blocks, a jump-table dispatch
 * (indirect branches), and call-heavy operator application.
 */

#include <functional>
#include <string>

#include "data_gen.hh"
#include "isa/assembler.hh"
#include "workload.hh"

namespace ssim::workloads
{

namespace
{

/** Generate deterministic "x3 = 12 + 4 * ( x1 - 3 ) ;" statements. */
std::vector<uint8_t>
makeSource(size_t bytes, uint64_t seed)
{
    Rng rng(seed);
    std::string out;
    out.reserve(bytes + 128);

    std::function<void(int)> expr = [&](int depth) {
        auto factor = [&](int d) {
            const double u = rng.uniform();
            if (d <= 0 || u < 0.45) {
                out += std::to_string(rng.below(1000));
            } else if (u < 0.8) {
                out += "x" + std::to_string(rng.below(32));
            } else {
                out += "( ";
                expr(d - 1);
                out += " )";
            }
        };
        const int terms = 1 + static_cast<int>(rng.below(3));
        factor(depth - 1);
        for (int i = 0; i < terms; ++i) {
            static const char *ops[] = {" + ", " - ", " * ", " / "};
            out += ops[rng.below(4)];
            factor(depth - 1);
        }
    };

    while (out.size() < bytes) {
        out += "x" + std::to_string(rng.below(32)) + " = ";
        expr(3);
        out += " ;\n";
    }
    return {out.begin(), out.end()};
}

} // namespace

isa::Program
buildCc(uint64_t scale, uint64_t variant)
{
    using namespace isa;

    const uint64_t n = 48 * 1024 * scale;
    const uint64_t clsBase = (n + 0xfffULL) & ~0xfffULL;
    const uint64_t precBase = clsBase + 128;
    const uint64_t jtBase = precBase + 128;
    const uint64_t varsBase = jtBase + 64;
    const uint64_t opStackBase = varsBase + 256;
    const uint64_t valStackBase = opStackBase + 512;

    Assembler as("cc");
    as.setDataSize(valStackBase + 4096);

    const std::vector<uint8_t> src = makeSource(n, inputSeed(0x9cc, variant));
    const uint64_t srcLen = src.size();
    as.addData(0, src);

    // Character classes: 0 space, 1 digit, 2 letter, 3 operator,
    // 4 '=', 5 ';', 6 other.
    std::vector<uint8_t> cls(128, 6);
    cls[static_cast<int>(' ')] = 0;
    cls[static_cast<int>('\n')] = 0;
    cls[static_cast<int>('\t')] = 0;
    for (char ch = '0'; ch <= '9'; ++ch)
        cls[static_cast<int>(ch)] = 1;
    for (char ch = 'a'; ch <= 'z'; ++ch)
        cls[static_cast<int>(ch)] = 2;
    for (char ch : {'+', '-', '*', '/', '(', ')'})
        cls[static_cast<int>(ch)] = 3;
    cls[static_cast<int>('=')] = 4;
    cls[static_cast<int>(';')] = 5;
    as.addData(clsBase, cls);

    std::vector<uint8_t> prec(128, 0);
    prec[static_cast<int>('+')] = 1;
    prec[static_cast<int>('-')] = 1;
    prec[static_cast<int>('*')] = 2;
    prec[static_cast<int>('/')] = 2;
    as.addData(precBase, prec);

    const uint8_t pos = 3, limit = 4, c = 5, chCls = 6;
    const uint8_t t1 = 7, t2 = 8, t3 = 9;
    const uint8_t num = 10, opSp = 11, valSp = 12, target = 13;
    const uint8_t state = 14, opReg = 16, va = 17, vb = 18, t4 = 19;

    Label mainLoop = as.newLabel();
    Label done = as.newLabel();
    Label hSpace = as.newLabel();
    Label hDigit = as.newLabel();
    Label hLetter = as.newLabel();
    Label hOp = as.newLabel();
    Label hEq = as.newLabel();
    Label hSemi = as.newLabel();
    Label hOther = as.newLabel();
    Label applyOp = as.newLabel();
    Label init = as.newLabel();

    as.jmp(init);

    // ---- applyOp: pop two values, apply opReg, push the result ----
    {
        Label notAdd = as.newLabel(), notSub = as.newLabel();
        Label notMul = as.newLabel(), divOk = as.newLabel();
        Label apDone = as.newLabel();
        as.bind(applyOp);
        as.addi(valSp, valSp, -8);
        as.ld(vb, valSp, 0);
        as.addi(valSp, valSp, -8);
        as.ld(va, valSp, 0);
        as.li(t4, '+');
        as.bne(opReg, t4, notAdd);
        as.add(va, va, vb);
        as.jmp(apDone);
        as.bind(notAdd);
        as.li(t4, '-');
        as.bne(opReg, t4, notSub);
        as.sub(va, va, vb);
        as.jmp(apDone);
        as.bind(notSub);
        as.li(t4, '*');
        as.bne(opReg, t4, notMul);
        as.mul(va, va, vb);
        as.jmp(apDone);
        as.bind(notMul);
        as.bne(vb, RegZero, divOk);
        as.li(vb, 1);
        as.bind(divOk);
        as.div(va, va, vb);
        as.bind(apDone);
        as.sd(va, valSp, 0);
        as.addi(valSp, valSp, 8);
        as.ret();
    }

    // ---- simple handlers ----
    as.bind(hSpace);
    as.addi(pos, pos, 1);
    as.jmp(mainLoop);

    as.bind(hOther);
    as.addi(pos, pos, 1);
    as.jmp(mainLoop);

    as.bind(hEq);
    as.li(state, 1);
    as.addi(pos, pos, 1);
    as.jmp(mainLoop);

    // ---- number literal ----
    {
        Label digLoop = as.newLabel(), digDone = as.newLabel();
        as.bind(hDigit);
        as.li(num, 0);
        as.bind(digLoop);
        as.lb(c, pos, 0);
        as.addi(t1, c, -'0');
        as.slti(t2, t1, 0);
        as.bne(t2, RegZero, digDone);
        as.slti(t2, t1, 10);
        as.beq(t2, RegZero, digDone);
        as.li(t3, 10);
        as.mul(num, num, t3);
        as.add(num, num, t1);
        as.addi(pos, pos, 1);
        as.jmp(digLoop);
        as.bind(digDone);
        as.sd(num, valSp, 0);
        as.addi(valSp, valSp, 8);
        as.jmp(mainLoop);
    }

    // ---- identifier: assignment target or variable read ----
    {
        Label digLoop = as.newLabel(), digDone = as.newLabel();
        Label varRead = as.newLabel();
        as.bind(hLetter);
        as.addi(pos, pos, 1);     // skip the 'x'
        as.li(num, 0);
        as.bind(digLoop);
        as.lb(c, pos, 0);
        as.addi(t1, c, -'0');
        as.slti(t2, t1, 0);
        as.bne(t2, RegZero, digDone);
        as.slti(t2, t1, 10);
        as.beq(t2, RegZero, digDone);
        as.li(t3, 10);
        as.mul(num, num, t3);
        as.add(num, num, t1);
        as.addi(pos, pos, 1);
        as.jmp(digLoop);
        as.bind(digDone);
        as.andi(num, num, 31);
        as.bne(state, RegZero, varRead);
        as.mov(target, num);
        as.li(state, 1);
        as.jmp(mainLoop);
        as.bind(varRead);
        as.slli(t1, num, 3);
        as.ld(t1, t1, static_cast<int64_t>(varsBase));
        as.sd(t1, valSp, 0);
        as.addi(valSp, valSp, 8);
        as.jmp(mainLoop);
    }

    // ---- operators and parentheses ----
    {
        Label pushOp = as.newLabel(), flushLoop = as.newLabel();
        Label rparen = as.newLabel(), rpLoop = as.newLabel();
        Label rpDone = as.newLabel(), rpPop = as.newLabel();
        as.bind(hOp);
        as.mov(t3, c);
        as.li(t1, '(');
        as.beq(c, t1, pushOp);
        as.li(t1, ')');
        as.beq(c, t1, rparen);
        as.lb(t2, c, static_cast<int64_t>(precBase));
        as.bind(flushLoop);
        as.li(t1, static_cast<int64_t>(opStackBase));
        as.beq(opSp, t1, pushOp);
        as.lb(opReg, opSp, -1);
        as.li(t1, '(');
        as.beq(opReg, t1, pushOp);
        as.lb(t1, opReg, static_cast<int64_t>(precBase));
        as.blt(t1, t2, pushOp);
        as.addi(opSp, opSp, -1);
        as.call(applyOp);
        as.jmp(flushLoop);
        as.bind(pushOp);
        as.sb(t3, opSp, 0);
        as.addi(opSp, opSp, 1);
        as.addi(pos, pos, 1);
        as.jmp(mainLoop);

        as.bind(rparen);
        as.bind(rpLoop);
        as.li(t1, static_cast<int64_t>(opStackBase));
        as.beq(opSp, t1, rpDone);   // tolerate unbalanced input
        as.lb(opReg, opSp, -1);
        as.li(t1, '(');
        as.beq(opReg, t1, rpPop);
        as.addi(opSp, opSp, -1);
        as.call(applyOp);
        as.jmp(rpLoop);
        as.bind(rpPop);
        as.addi(opSp, opSp, -1);    // discard the '('
        as.bind(rpDone);
        as.addi(pos, pos, 1);
        as.jmp(mainLoop);
    }

    // ---- statement end: flush, assign to the target variable ----
    {
        Label smLoop = as.newLabel(), smFlush = as.newLabel();
        Label smStore = as.newLabel(), smAssign = as.newLabel();
        as.bind(hSemi);
        as.bind(smLoop);
        as.li(t1, static_cast<int64_t>(opStackBase));
        as.beq(opSp, t1, smFlush);
        as.lb(opReg, opSp, -1);
        as.addi(opSp, opSp, -1);
        as.call(applyOp);
        as.jmp(smLoop);
        as.bind(smFlush);
        // Pop the result if the value stack is non-empty.
        as.li(t1, static_cast<int64_t>(valStackBase));
        as.bne(valSp, t1, smStore);
        as.li(t2, 0);
        as.jmp(smAssign);
        as.bind(smStore);
        as.addi(valSp, valSp, -8);
        as.ld(t2, valSp, 0);
        as.bind(smAssign);
        as.slli(t1, target, 3);
        as.sd(t2, t1, static_cast<int64_t>(varsBase));
        as.li(state, 0);
        // Reset the value stack between statements.
        as.li(valSp, static_cast<int64_t>(valStackBase));
        as.addi(pos, pos, 1);
        as.jmp(mainLoop);
    }

    // ---- init: build the dispatch jump table, clear variables ----
    as.bind(init);
    as.li(t2, static_cast<int64_t>(jtBase));
    as.la(t1, hSpace);
    as.sd(t1, t2, 0);
    as.la(t1, hDigit);
    as.sd(t1, t2, 8);
    as.la(t1, hLetter);
    as.sd(t1, t2, 16);
    as.la(t1, hOp);
    as.sd(t1, t2, 24);
    as.la(t1, hEq);
    as.sd(t1, t2, 32);
    as.la(t1, hSemi);
    as.sd(t1, t2, 40);
    as.la(t1, hOther);
    as.sd(t1, t2, 48);
    as.la(t1, hOther);
    as.sd(t1, t2, 56);

    as.li(t1, 0);
    {
        Label vInit = as.newLabel(), vInitEnd = as.newLabel();
        as.bind(vInit);
        as.slti(t2, t1, 32);
        as.beq(t2, RegZero, vInitEnd);
        as.slli(t3, t1, 3);
        as.sd(t1, t3, static_cast<int64_t>(varsBase));
        as.addi(t1, t1, 1);
        as.jmp(vInit);
        as.bind(vInitEnd);
    }

    as.li(pos, 0);
    as.li(limit, static_cast<int64_t>(srcLen));
    as.li(opSp, static_cast<int64_t>(opStackBase));
    as.li(valSp, static_cast<int64_t>(valStackBase));
    as.li(target, 0);
    as.li(state, 0);

    // ---- main dispatch loop ----
    as.bind(mainLoop);
    as.bge(pos, limit, done);
    as.lb(c, pos, 0);
    as.andi(c, c, 127);
    as.lb(chCls, c, static_cast<int64_t>(clsBase));
    as.slli(t1, chCls, 3);
    as.ld(t1, t1, static_cast<int64_t>(jtBase));
    as.jr(t1);

    as.bind(done);
    as.halt();
    return as.finish();
}

} // namespace ssim::workloads
