/**
 * @file
 * "parse" — parser archetype: word tokenizing over text with a
 * chained-hash dictionary and byte-wise string comparison inner
 * loops. Dominated by short unpredictable loops and pointer walks.
 *
 * Dictionary record layout (48 bytes):
 *   +0  next record address (0 terminates the chain)
 *   +8  occurrence count
 *   +16 word length
 *   +24 word bytes (up to 24)
 */

#include "data_gen.hh"
#include "isa/assembler.hh"
#include "workload.hh"

namespace ssim::workloads
{

isa::Program
buildParse(uint64_t scale, uint64_t variant)
{
    using namespace isa;

    const uint64_t n = 96 * 1024 * scale;
    const uint64_t tblBase = (n + 0xfffULL) & ~0xfffULL;  // 1024 x 8B
    const uint64_t heapBase = tblBase + 1024 * 8;
    const uint64_t heapCap = 64 * 1024;
    const uint64_t heapEnd = heapBase + heapCap - 48;
    const uint64_t resultBase = heapBase + heapCap;

    Assembler as("parse");
    as.setDataSize(resultBase + 64);
    as.addData(0, makeText(n, inputSeed(0x9a15e, variant)));

    const uint8_t pos = 3, limit = 4, c = 5, start = 6, len = 7;
    const uint8_t hash = 8, t1 = 9, t2 = 10, t3 = 11, entry = 12;
    const uint8_t heap = 13, i = 14, acc = 15, bucket = 16;

    Label mainLoop = as.newLabel();
    Label advance = as.newLabel();
    Label wordLoop = as.newLabel();
    Label wordDone = as.newLabel();
    Label lenOk = as.newLabel();
    Label chainLoop = as.newLabel();
    Label chainNext = as.newLabel();
    Label cmpLoop = as.newLabel();
    Label matched = as.newLabel();
    Label insert = as.newLabel();
    Label copyLoop = as.newLabel();
    Label copyDone = as.newLabel();
    Label countPhase = as.newLabel();
    Label cbLoop = as.newLabel();
    Label cbEnd = as.newLabel();
    Label ceLoop = as.newLabel();
    Label ceEnd = as.newLabel();

    as.li(pos, 0);
    as.li(limit, static_cast<int64_t>(n));
    as.li(heap, static_cast<int64_t>(heapBase));

    as.bind(mainLoop);
    as.bge(pos, limit, countPhase);
    as.lb(c, pos, 0);
    as.addi(t1, c, -'a');
    as.slti(t2, t1, 0);
    as.bne(t2, RegZero, advance);
    as.slti(t2, t1, 26);
    as.beq(t2, RegZero, advance);

    // A word starts here: scan it and hash it.
    as.mov(start, pos);
    as.li(hash, 0);
    as.bind(wordLoop);
    as.bge(pos, limit, wordDone);
    as.lb(c, pos, 0);
    as.addi(t1, c, -'a');
    as.slti(t2, t1, 0);
    as.bne(t2, RegZero, wordDone);
    as.slti(t2, t1, 26);
    as.beq(t2, RegZero, wordDone);
    as.slli(t2, hash, 5);       // hash = hash * 31 + c
    as.sub(hash, t2, hash);
    as.add(hash, hash, c);
    as.addi(pos, pos, 1);
    as.jmp(wordLoop);
    as.bind(wordDone);

    as.sub(len, pos, start);
    as.slti(t2, len, 25);
    as.bne(t2, RegZero, lenOk);
    as.li(len, 24);
    as.bind(lenOk);

    as.andi(bucket, hash, 1023);
    as.slli(t1, bucket, 3);
    as.ld(entry, t1, static_cast<int64_t>(tblBase));

    as.bind(chainLoop);
    as.beq(entry, RegZero, insert);
    as.ld(t2, entry, 16);
    as.bne(t2, len, chainNext);
    as.li(i, 0);
    as.bind(cmpLoop);
    as.bge(i, len, matched);
    as.add(t2, start, i);
    as.lb(t2, t2, 0);
    as.add(t3, entry, i);
    as.lb(t3, t3, 24);
    as.bne(t2, t3, chainNext);
    as.addi(i, i, 1);
    as.jmp(cmpLoop);
    as.bind(chainNext);
    as.ld(entry, entry, 0);
    as.jmp(chainLoop);

    as.bind(matched);
    as.ld(t2, entry, 8);
    as.addi(t2, t2, 1);
    as.sd(t2, entry, 8);
    as.jmp(mainLoop);

    as.bind(insert);
    as.li(t1, static_cast<int64_t>(heapEnd));
    as.bge(heap, t1, mainLoop);     // heap full: drop the word
    as.slli(t1, bucket, 3);
    as.ld(t2, t1, static_cast<int64_t>(tblBase));
    as.sd(t2, heap, 0);
    as.sd(heap, t1, static_cast<int64_t>(tblBase));
    as.li(t2, 1);
    as.sd(t2, heap, 8);
    as.sd(len, heap, 16);
    as.li(i, 0);
    as.bind(copyLoop);
    as.bge(i, len, copyDone);
    as.add(t2, start, i);
    as.lb(t2, t2, 0);
    as.add(t3, heap, i);
    as.sb(t2, t3, 24);
    as.addi(i, i, 1);
    as.jmp(copyLoop);
    as.bind(copyDone);
    as.addi(heap, heap, 48);
    as.jmp(mainLoop);

    as.bind(advance);
    as.addi(pos, pos, 1);
    as.jmp(mainLoop);

    // ---- reduction: weighted count over all chains ----
    as.bind(countPhase);
    as.li(acc, 0);
    as.li(bucket, 0);
    as.bind(cbLoop);
    as.slti(t1, bucket, 1024);
    as.beq(t1, RegZero, cbEnd);
    as.slli(t1, bucket, 3);
    as.ld(entry, t1, static_cast<int64_t>(tblBase));
    as.bind(ceLoop);
    as.beq(entry, RegZero, ceEnd);
    as.ld(t2, entry, 8);
    as.ld(t3, entry, 16);
    as.mul(t2, t2, t3);
    as.add(acc, acc, t2);
    as.ld(entry, entry, 0);
    as.jmp(ceLoop);
    as.bind(ceEnd);
    as.addi(bucket, bucket, 1);
    as.jmp(cbLoop);
    as.bind(cbEnd);
    as.li(t1, static_cast<int64_t>(resultBase));
    as.sd(acc, t1, 0);
    as.halt();
    return as.finish();
}

} // namespace ssim::workloads
