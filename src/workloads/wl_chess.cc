/**
 * @file
 * "chess" — crafty archetype: depth-limited negamax search over a 4x4
 * board game with a line-based evaluation function. Dominated by
 * recursion (calls/returns exercising the RAS), short loops and
 * data-dependent branches.
 */

#include "isa/assembler.hh"
#include "workload.hh"

namespace ssim::workloads
{

isa::Program
buildChess(uint64_t scale, uint64_t variant)
{
    using namespace isa;

    constexpr uint64_t boardBase = 0;      // 16 cells, 1 byte each
    constexpr uint64_t linesBase = 64;     // 10 lines x 4 cell indices
    constexpr uint64_t weightBase = 128;   // score per line count
    constexpr uint64_t resultBase = 192;

    Assembler as("chess");
    as.setDataSize(1 << 16);

    // Rows, columns and both diagonals of the 4x4 board.
    std::vector<uint8_t> lines;
    for (int r = 0; r < 4; ++r)
        for (int c = 0; c < 4; ++c)
            lines.push_back(static_cast<uint8_t>(4 * r + c));
    for (int c = 0; c < 4; ++c)
        for (int r = 0; r < 4; ++r)
            lines.push_back(static_cast<uint8_t>(4 * r + c));
    for (int i = 0; i < 4; ++i)
        lines.push_back(static_cast<uint8_t>(5 * i));
    for (int i = 0; i < 4; ++i)
        lines.push_back(static_cast<uint8_t>(3 * i + 3));
    as.addData(linesBase, lines);
    as.addWords(weightBase, {0, 1, 4, 16, 64});

    // Register conventions:
    //   r3/r4: arguments (player, depth); r5: return value
    //   r6-r15: caller-clobbered temporaries
    //   r20-r23: callee-saved locals of negamax
    const uint8_t aPlayer = 3, aDepth = 4, ret = 5;
    const uint8_t t1 = 6, t2 = 7, t3 = 8, t4 = 9, c1 = 10, c2 = 11;
    const uint8_t lineI = 12, cellJ = 13, score = 14, wB = 15;
    const uint8_t sCell = 20, sBest = 21, sPlayer = 22, sDepth = 23;
    const uint8_t gGame = 24, gTotal = 25, gSeed = 26, gI = 27;

    Label negamax = as.newLabel();
    Label evalFn = as.newLabel();
    Label mainStart = as.newLabel();

    as.jmp(mainStart);

    // ---- eval(player=r3) -> r5 (leaf function) ----
    as.bind(evalFn);
    as.li(score, 0);
    as.li(wB, weightBase);
    as.li(lineI, 0);
    Label evLine = as.newLabel();
    Label evLineEnd = as.newLabel();
    Label evCell = as.newLabel();
    Label evCellEnd = as.newLabel();
    Label evNot1 = as.newLabel();
    Label evNext = as.newLabel();
    as.bind(evLine);
    as.slti(t1, lineI, 10);
    as.beq(t1, RegZero, evLineEnd);
    as.li(c1, 0);
    as.li(c2, 0);
    as.li(cellJ, 0);
    as.bind(evCell);
    as.slti(t1, cellJ, 4);
    as.beq(t1, RegZero, evCellEnd);
    as.slli(t1, lineI, 2);
    as.add(t1, t1, cellJ);
    as.lb(t2, t1, linesBase);          // cell index
    as.lb(t3, t2, boardBase);          // cell contents
    as.li(t4, 1);
    as.bne(t3, t4, evNot1);
    as.addi(c1, c1, 1);
    as.jmp(evNext);
    as.bind(evNot1);
    as.beq(t3, RegZero, evNext);
    as.addi(c2, c2, 1);
    as.bind(evNext);
    as.addi(cellJ, cellJ, 1);
    as.jmp(evCell);
    as.bind(evCellEnd);
    // score += weight[c1] - weight[c2]
    as.slli(t1, c1, 3);
    as.add(t1, t1, wB);
    as.ld(t2, t1, 0);
    as.slli(t1, c2, 3);
    as.add(t1, t1, wB);
    as.ld(t3, t1, 0);
    as.sub(t2, t2, t3);
    as.add(score, score, t2);
    as.addi(lineI, lineI, 1);
    as.jmp(evLine);
    as.bind(evLineEnd);
    // Negate for player 2 (score is from player 1's viewpoint).
    Label evP1 = as.newLabel();
    as.li(t1, 2);
    as.bne(aPlayer, t1, evP1);
    as.sub(score, RegZero, score);
    as.bind(evP1);
    as.mov(ret, score);
    as.ret();

    // ---- negamax(player=r3, depth=r4) -> r5 ----
    as.bind(negamax);
    // Tail-call eval at depth 0 (no frame pushed yet).
    Label body = as.newLabel();
    as.bne(aDepth, RegZero, body);
    as.jmp(evalFn);
    as.bind(body);
    as.addi(RegSp, RegSp, -40);
    as.sd(RegRa, RegSp, 0);
    as.sd(sCell, RegSp, 8);
    as.sd(sBest, RegSp, 16);
    as.sd(sPlayer, RegSp, 24);
    as.sd(sDepth, RegSp, 32);
    as.mov(sPlayer, aPlayer);
    as.mov(sDepth, aDepth);
    as.li(sBest, -100000);
    as.li(sCell, 0);

    Label moveLoop = as.newLabel();
    Label moveEnd = as.newLabel();
    Label moveNext = as.newLabel();
    Label noImprove = as.newLabel();
    as.bind(moveLoop);
    as.slti(t1, sCell, 16);
    as.beq(t1, RegZero, moveEnd);
    as.lb(t2, sCell, boardBase);
    as.bne(t2, RegZero, moveNext);
    as.sb(sPlayer, sCell, boardBase);  // make the move
    as.li(t1, 3);
    as.sub(aPlayer, t1, sPlayer);      // opponent
    as.addi(aDepth, sDepth, -1);
    as.call(negamax);
    as.sub(ret, RegZero, ret);         // negate the child score
    as.sb(RegZero, sCell, boardBase);  // undo the move
    as.bge(sBest, ret, noImprove);
    as.mov(sBest, ret);
    as.bind(noImprove);
    as.bind(moveNext);
    as.addi(sCell, sCell, 1);
    as.jmp(moveLoop);
    as.bind(moveEnd);

    // No legal move (full board): fall back to the evaluation.
    Label haveScore = as.newLabel();
    as.li(t1, -100000);
    as.bne(sBest, t1, haveScore);
    as.mov(aPlayer, sPlayer);
    as.call(evalFn);
    as.mov(sBest, ret);
    as.bind(haveScore);

    as.mov(ret, sBest);
    as.ld(RegRa, RegSp, 0);
    as.ld(sCell, RegSp, 8);
    as.ld(sBest, RegSp, 16);
    as.ld(sPlayer, RegSp, 24);
    as.ld(sDepth, RegSp, 32);
    as.addi(RegSp, RegSp, 40);
    as.ret();

    // ---- main: play a series of randomized games ----
    as.bind(mainStart);
    const int64_t games = static_cast<int64_t>(5 * scale);
    as.li(gGame, 0);
    as.li(gTotal, 0);
    as.li(gSeed, static_cast<int64_t>(
        inputSeed(0x2b5e1, variant) & 0x7fffffff));

    Label gameLoop = as.newLabel();
    Label gameEnd = as.newLabel();
    as.bind(gameLoop);
    as.li(t1, games);
    as.bge(gGame, t1, gameEnd);

    // Clear the board.
    as.li(t1, 0);
    Label clearLoop = as.newLabel();
    Label clearEnd = as.newLabel();
    as.bind(clearLoop);
    as.slti(t2, t1, 16);
    as.beq(t2, RegZero, clearEnd);
    as.sb(RegZero, t1, boardBase);
    as.addi(t1, t1, 1);
    as.jmp(clearLoop);
    as.bind(clearEnd);

    // Prefill 6 cells pseudo-randomly (skip occupied cells).
    as.li(gI, 0);
    Label fillLoop = as.newLabel();
    Label fillEnd = as.newLabel();
    Label fillSkip = as.newLabel();
    as.bind(fillLoop);
    as.slti(t1, gI, 6);
    as.beq(t1, RegZero, fillEnd);
    as.li(t1, 1103515245);
    as.mul(gSeed, gSeed, t1);
    as.addi(gSeed, gSeed, 12345);
    as.srli(t2, gSeed, 16);
    as.andi(t2, t2, 15);               // cell
    as.lb(t3, t2, boardBase);
    as.bne(t3, RegZero, fillSkip);
    as.andi(t4, gI, 1);
    as.addi(t4, t4, 1);                // player 1 or 2
    as.sb(t4, t2, boardBase);
    as.bind(fillSkip);
    as.addi(gI, gI, 1);
    as.jmp(fillLoop);
    as.bind(fillEnd);

    as.li(aPlayer, 1);
    as.li(aDepth, 3);
    as.call(negamax);
    as.add(gTotal, gTotal, ret);

    as.addi(gGame, gGame, 1);
    as.jmp(gameLoop);
    as.bind(gameEnd);

    as.li(t1, resultBase);
    as.sd(gTotal, t1, 0);
    as.halt();
    return as.finish();
}

} // namespace ssim::workloads
