/**
 * @file
 * "perl" — perlbmk archetype: a register-based bytecode interpreter
 * with a 16-way indirect dispatch table, running a bubble-sort +
 * checksum bytecode program over freshly randomized data each
 * repetition. Dominated by indirect branches (the dispatch `jr`) and
 * interpreter-table loads.
 *
 * Bytecode format: 4 bytes per instruction {op, a, b, c}; registers
 * live in memory (32 x 8B) as do the VM's 256 data words.
 */

#include "isa/assembler.hh"
#include "workload.hh"

namespace ssim::workloads
{

namespace
{

// VM opcodes.
enum VmOp : uint8_t
{
    vHALT = 0, vLI, vMOV, vADD, vSUB, vMUL, vJMP, vJLT, vJGE,
    vLD, vST, vADDI, vAND, vXOR, vJNE, vSRL
};

/** The bubble-sort + checksum program (see indices in comments). */
std::vector<uint8_t>
makeBytecode()
{
    std::vector<uint8_t> bc;
    auto emit = [&bc](uint8_t op, uint8_t a, uint8_t b, uint8_t c) {
        bc.push_back(op);
        bc.push_back(a);
        bc.push_back(b);
        bc.push_back(c);
    };
    emit(vLI, 2, 128, 0);    //  0: n = 128
    emit(vLI, 6, 1, 0);      //  1: one = 1
    emit(vSUB, 8, 2, 6);     //  2: nm1 = n - 1
    emit(vLI, 0, 0, 0);      //  3: i = 0
    emit(vJGE, 0, 8, 18);    //  4: while (i < nm1)
    emit(vLI, 1, 0, 0);      //  5:   j = 0
    emit(vSUB, 5, 8, 0);     //  6:   limit = nm1 - i
    emit(vJGE, 1, 5, 16);    //  7:   while (j < limit)
    emit(vLD, 3, 1, 0);      //  8:     a = mem[j]
    emit(vADDI, 5, 1, 1);    //  9:     jp = j + 1
    emit(vLD, 4, 5, 0);      // 10:     b = mem[j+1]
    emit(vJLT, 3, 4, 14);    // 11:     if (a >= b) swap:
    emit(vST, 4, 1, 0);      // 12:       mem[j] = b
    emit(vST, 3, 5, 0);      // 13:       mem[j+1] = a
    emit(vADD, 1, 1, 6);     // 14:     ++j
    emit(vJMP, 0, 0, 6);     // 15:   (recompute limit -> loop)
    emit(vADD, 0, 0, 6);     // 16:   ++i
    emit(vJMP, 0, 0, 4);     // 17: loop
    emit(vLI, 7, 0, 0);      // 18: sum = 0
    emit(vLI, 0, 0, 0);      // 19: i = 0
    emit(vJGE, 0, 2, 25);    // 20: while (i < n)
    emit(vLD, 3, 0, 0);      // 21:   v = mem[i]
    emit(vXOR, 7, 7, 3);     // 22:   sum ^= v
    emit(vADD, 0, 0, 6);     // 23:   ++i
    emit(vJMP, 0, 0, 20);    // 24: loop
    emit(vST, 7, 6, 199);    // 25: mem[200] = sum
    emit(vHALT, 0, 0, 0);    // 26
    return bc;
}

} // namespace

isa::Program
buildPerl(uint64_t scale, uint64_t variant)
{
    using namespace isa;

    constexpr int64_t bcBase = 0;
    constexpr int64_t vregsBase = 1024;      // 32 x 8B
    constexpr int64_t vmemBase = 2048;       // 256 x 8B
    constexpr int64_t jtBase = 8192;         // 16 x 8B
    constexpr int64_t resultBase = 8448;

    Assembler as("perl");
    as.setDataSize(16 * 1024);
    as.addData(bcBase, makeBytecode());

    const uint8_t vpc = 3, op = 5, ra = 6, rb = 7, rc = 8;
    const uint8_t t1 = 9, t2 = 10, t3 = 11, va = 12, vb = 13;
    const uint8_t rep = 14, seed = 15, i = 16, reps = 17, acc = 18;

    Label vmLoop = as.newLabel();
    Label repLoop = as.newLabel();
    Label repNext = as.newLabel();
    Label allDone = as.newLabel();
    Label init = as.newLabel();

    Label handlers[16];
    for (auto &h : handlers)
        h = as.newLabel();

    as.jmp(init);

    // Helpers working on VM register slots.
    auto loadVreg = [&](uint8_t dst, uint8_t idxReg) {
        as.slli(t1, idxReg, 3);
        as.ld(dst, t1, vregsBase);
    };
    auto storeVreg = [&](uint8_t src, uint8_t idxReg) {
        as.slli(t1, idxReg, 3);
        as.sd(src, t1, vregsBase);
    };

    // ---- VM instruction handlers ----
    as.bind(handlers[vHALT]);
    as.jmp(repNext);

    as.bind(handlers[vLI]);
    storeVreg(rb, ra);
    as.jmp(vmLoop);

    as.bind(handlers[vMOV]);
    loadVreg(va, rb);
    storeVreg(va, ra);
    as.jmp(vmLoop);

    as.bind(handlers[vADD]);
    loadVreg(va, rb);
    loadVreg(vb, rc);
    as.add(va, va, vb);
    storeVreg(va, ra);
    as.jmp(vmLoop);

    as.bind(handlers[vSUB]);
    loadVreg(va, rb);
    loadVreg(vb, rc);
    as.sub(va, va, vb);
    storeVreg(va, ra);
    as.jmp(vmLoop);

    as.bind(handlers[vMUL]);
    loadVreg(va, rb);
    loadVreg(vb, rc);
    as.mul(va, va, vb);
    storeVreg(va, ra);
    as.jmp(vmLoop);

    as.bind(handlers[vJMP]);
    as.mov(vpc, rc);
    as.jmp(vmLoop);

    {
        Label skip = as.newLabel();
        as.bind(handlers[vJLT]);
        loadVreg(va, ra);
        loadVreg(vb, rb);
        as.bge(va, vb, skip);
        as.mov(vpc, rc);
        as.bind(skip);
        as.jmp(vmLoop);
    }
    {
        Label skip = as.newLabel();
        as.bind(handlers[vJGE]);
        loadVreg(va, ra);
        loadVreg(vb, rb);
        as.blt(va, vb, skip);
        as.mov(vpc, rc);
        as.bind(skip);
        as.jmp(vmLoop);
    }
    {
        Label skip = as.newLabel();
        as.bind(handlers[vJNE]);
        loadVreg(va, ra);
        loadVreg(vb, rb);
        as.beq(va, vb, skip);
        as.mov(vpc, rc);
        as.bind(skip);
        as.jmp(vmLoop);
    }

    as.bind(handlers[vLD]);
    loadVreg(va, rb);
    as.add(va, va, rc);
    as.andi(va, va, 255);
    as.slli(va, va, 3);
    as.ld(va, va, vmemBase);
    storeVreg(va, ra);
    as.jmp(vmLoop);

    as.bind(handlers[vST]);
    loadVreg(va, rb);
    as.add(va, va, rc);
    as.andi(va, va, 255);
    as.slli(vb, va, 3);
    loadVreg(va, ra);
    as.sd(va, vb, vmemBase);
    as.jmp(vmLoop);

    as.bind(handlers[vADDI]);
    loadVreg(va, rb);
    as.add(va, va, rc);
    storeVreg(va, ra);
    as.jmp(vmLoop);

    as.bind(handlers[vAND]);
    loadVreg(va, rb);
    loadVreg(vb, rc);
    as.and_(va, va, vb);
    storeVreg(va, ra);
    as.jmp(vmLoop);

    as.bind(handlers[vXOR]);
    loadVreg(va, rb);
    loadVreg(vb, rc);
    as.xor_(va, va, vb);
    storeVreg(va, ra);
    as.jmp(vmLoop);

    as.bind(handlers[vSRL]);
    loadVreg(va, rb);
    as.andi(vb, rc, 63);
    as.srl(va, va, vb);
    storeVreg(va, ra);
    as.jmp(vmLoop);

    // ---- init: dispatch table, repetition loop ----
    as.bind(init);
    as.li(t2, jtBase);
    for (int h = 0; h < 16; ++h) {
        as.la(t1, handlers[h]);
        as.sd(t1, t2, h * 8);
    }
    as.li(rep, 0);
    as.li(reps, static_cast<int64_t>(std::max<uint64_t>(1, scale)));
    as.li(seed, static_cast<int64_t>(
        inputSeed(0x5eed, variant) & 0x7fffffff));
    as.li(acc, 0);

    as.bind(repLoop);
    as.bge(rep, reps, allDone);

    // Refill the VM's data array with LCG values.
    as.li(i, 0);
    {
        Label fill = as.newLabel(), fillEnd = as.newLabel();
        as.bind(fill);
        as.slti(t1, i, 128);
        as.beq(t1, RegZero, fillEnd);
        as.li(t1, 1103515245);
        as.mul(seed, seed, t1);
        as.addi(seed, seed, 12345);
        as.srli(t2, seed, 16);
        as.andi(t2, t2, 1023);
        as.slli(t3, i, 3);
        as.sd(t2, t3, vmemBase);
        as.addi(i, i, 1);
        as.jmp(fill);
        as.bind(fillEnd);
    }

    as.li(vpc, 0);

    // ---- dispatch loop ----
    as.bind(vmLoop);
    as.slli(t1, vpc, 2);
    as.lb(op, t1, bcBase + 0);
    as.lb(ra, t1, bcBase + 1);
    as.lb(rb, t1, bcBase + 2);
    as.lb(rc, t1, bcBase + 3);
    // lb sign-extends; operand bytes are unsigned.
    as.andi(ra, ra, 255);
    as.andi(rb, rb, 255);
    as.andi(rc, rc, 255);
    as.addi(vpc, vpc, 1);
    as.andi(op, op, 15);
    as.slli(t2, op, 3);
    as.ld(t2, t2, jtBase);
    as.jr(t2);

    as.bind(repNext);
    // Fold the VM checksum into an accumulator.
    as.li(t1, vmemBase + 200 * 8);
    as.ld(t2, t1, 0);
    as.add(acc, acc, t2);
    as.addi(rep, rep, 1);
    as.jmp(repLoop);

    as.bind(allDone);
    as.li(t1, resultBase);
    as.sd(acc, t1, 0);
    as.halt();
    return as.finish();
}

} // namespace ssim::workloads
