/**
 * @file
 * "zip" — gzip archetype: LZ77 compression with a hash-chain match
 * search. Dominated by byte loads, a data-dependent match-length inner
 * loop, and hash-table stores.
 */

#include "data_gen.hh"
#include "isa/assembler.hh"
#include "workload.hh"

namespace ssim::workloads
{

isa::Program
buildZip(uint64_t scale, uint64_t variant)
{
    using namespace isa;

    const uint64_t n = 96 * 1024 * scale;
    const uint64_t hashBase = (n + 8192 + 0xfff) & ~0xfffULL;
    const uint64_t hashBytes = 4096 * 8;
    const uint64_t outBase = hashBase + hashBytes;

    Assembler as("zip");
    as.setDataSize(outBase + n + 4096);
    as.addData(0, makeText(n, inputSeed(0x21575, variant)));

    const uint8_t pos = 3, limit = 4, hashB = 6, out = 7;
    const uint8_t c0 = 8, c1 = 9, c2 = 10, h = 11, cand = 12;
    const uint8_t len = 13, t1 = 14, t2 = 15, t3 = 16, dist = 17;

    as.li(pos, 0);
    as.li(limit, static_cast<int64_t>(n - 3));
    as.li(hashB, static_cast<int64_t>(hashBase));
    as.li(out, static_cast<int64_t>(outBase));

    Label mainLoop = as.newLabel();
    Label endMain = as.newLabel();
    Label noMatch = as.newLabel();
    Label cmpLoop = as.newLabel();
    Label cmpDone = as.newLabel();
    Label literal = as.newLabel();
    Label advance = as.newLabel();

    as.bind(mainLoop);
    as.bge(pos, limit, endMain);

    as.lb(c0, pos, 0);
    as.lb(c1, pos, 1);
    as.lb(c2, pos, 2);

    // h = ((c0 * 129 + c1) * 129 + c2) & 4095
    as.slli(t1, c0, 7);
    as.add(t1, t1, c0);
    as.add(t1, t1, c1);
    as.slli(t2, t1, 7);
    as.add(t1, t2, t1);
    as.add(t1, t1, c2);
    as.andi(h, t1, 4095);

    // cand = hash[h]; hash[h] = pos + 1
    as.slli(t1, h, 3);
    as.add(t1, t1, hashB);
    as.ld(cand, t1, 0);
    as.addi(t2, pos, 1);
    as.sd(t2, t1, 0);

    as.li(len, 0);
    as.beq(cand, RegZero, noMatch);
    as.addi(cand, cand, -1);
    as.sub(dist, pos, cand);
    as.li(t1, 8192);
    as.bge(dist, t1, noMatch);
    as.beq(dist, RegZero, noMatch);

    as.bind(cmpLoop);
    as.slti(t1, len, 64);
    as.beq(t1, RegZero, cmpDone);
    as.add(t2, pos, len);
    as.bge(t2, limit, cmpDone);
    as.add(t3, cand, len);
    as.lb(t3, t3, 0);
    as.lb(t2, t2, 0);
    as.bne(t2, t3, cmpDone);
    as.addi(len, len, 1);
    as.jmp(cmpLoop);
    as.bind(cmpDone);

    as.bind(noMatch);
    as.slti(t1, len, 4);
    as.bne(t1, RegZero, literal);

    // Emit a (distance, length) token and skip the match.
    as.slli(t1, dist, 8);
    as.or_(t1, t1, len);
    as.sw(t1, out, 0);
    as.addi(out, out, 4);
    as.add(pos, pos, len);
    as.jmp(advance);

    as.bind(literal);
    as.sb(c0, out, 0);
    as.addi(out, out, 1);
    as.addi(pos, pos, 1);

    as.bind(advance);
    as.jmp(mainLoop);

    as.bind(endMain);
    as.halt();
    return as.finish();
}

} // namespace ssim::workloads
