/**
 * @file
 * Deterministic input-data generators shared by the workload builders.
 */

#ifndef SSIM_WORKLOADS_DATA_GEN_HH
#define SSIM_WORKLOADS_DATA_GEN_HH

#include <cstddef>
#include <cstdint>
#include <vector>

#include "util/random.hh"

namespace ssim::workloads
{

/**
 * Text-like bytes: words of letters separated by spaces/newlines,
 * drawn from a small vocabulary so repetitions occur (gives LZ
 * compressors something to find).
 */
std::vector<uint8_t> makeText(size_t bytes, uint64_t seed);

/** Runs of repeated bytes interleaved with noise (RLE-friendly). */
std::vector<uint8_t> makeRunsData(size_t bytes, uint64_t seed);

/** Uniform random bytes. */
std::vector<uint8_t> makeRandomBytes(size_t bytes, uint64_t seed);

} // namespace ssim::workloads

#endif // SSIM_WORKLOADS_DATA_GEN_HH
