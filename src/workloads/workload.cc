#include "workload.hh"

#include "util/error.hh"
#include "util/logging.hh"

namespace ssim::workloads
{

const std::vector<WorkloadInfo> &
suite()
{
    static const std::vector<WorkloadInfo> workloads = {
        {"compress", "bzip2",
         "RLE + move-to-front byte compression"},
        {"chess", "crafty",
         "recursive negamax search over a small board game"},
        {"raytrace", "eon",
         "sphere-intersection ray caster (FP heavy)"},
        {"cc", "gcc",
         "tokenizer + expression compiler with jump-table dispatch"},
        {"zip", "gzip",
         "LZ77 compression with hash-chain match search"},
        {"parse", "parser",
         "word tokenizer with chained-hash dictionary"},
        {"perl", "perlbmk",
         "bytecode interpreter with indirect dispatch"},
        {"place", "twolf",
         "simulated-annealing placement with random swaps"},
        {"oodb", "vortex",
         "object store with hash index and pointer-chasing queries"},
        {"route", "vpr",
         "breadth-first maze router over a grid"},
    };
    return workloads;
}

isa::Program
build(const std::string &name, uint64_t scale, uint64_t variant)
{
    if (name == "compress")
        return buildCompress(scale, variant);
    if (name == "chess")
        return buildChess(scale, variant);
    if (name == "raytrace")
        return buildRaytrace(scale, variant);
    if (name == "cc")
        return buildCc(scale, variant);
    if (name == "zip")
        return buildZip(scale, variant);
    if (name == "parse")
        return buildParse(scale, variant);
    if (name == "perl")
        return buildPerl(scale, variant);
    if (name == "place")
        return buildPlace(scale, variant);
    if (name == "oodb")
        return buildOodb(scale, variant);
    if (name == "route")
        return buildRoute(scale, variant);
    std::string known;
    for (const auto &info : suite())
        known += (known.empty() ? "" : ", ") + info.name;
    throw Error(ErrorCategory::UnknownWorkload,
                "unknown workload '" + name + "' (available: " +
                known + ")");
}

} // namespace ssim::workloads
