/**
 * @file
 * "compress" — bzip2 archetype: run-length encoding followed by a
 * move-to-front transform and a frequency histogram. Dominated by
 * store traffic (the MTF table shifting) and short data-dependent
 * loops.
 */

#include "data_gen.hh"
#include "isa/assembler.hh"
#include "workload.hh"

namespace ssim::workloads
{

isa::Program
buildCompress(uint64_t scale, uint64_t variant)
{
    using namespace isa;

    const uint64_t n = 32 * 1024 * scale;
    const uint64_t rleBase = (n + 0xfff) & ~0xfffULL;
    const uint64_t rleCap = 2 * n + 64;
    const uint64_t mtfTable = rleBase + rleCap;            // 256 bytes
    const uint64_t mtfOut = mtfTable + 256;
    const uint64_t histBase = mtfOut + rleCap;             // 256 x 8B

    Assembler as("compress");
    as.setDataSize(histBase + 256 * 8 + 64);
    as.addData(0, makeRunsData(n, inputSeed(0xC0135, variant)));

    const uint8_t pos = 3, limit = 4, rle = 5, val = 6, run = 7;
    const uint8_t t1 = 8, t2 = 9, t3 = 10;
    const uint8_t mtfB = 11, outP = 12, end = 13, sym = 14;
    const uint8_t idx = 15, acc = 16;

    // ---- Phase 1: RLE: emit (value, runLength<=255) byte pairs. ----
    as.li(pos, 0);
    as.li(limit, static_cast<int64_t>(n));
    as.li(rle, static_cast<int64_t>(rleBase));

    Label rleLoop = as.newLabel();
    Label rleEnd = as.newLabel();
    Label runLoop = as.newLabel();
    Label runEnd = as.newLabel();

    as.bind(rleLoop);
    as.bge(pos, limit, rleEnd);
    as.lb(val, pos, 0);
    as.li(run, 1);
    as.addi(pos, pos, 1);

    as.bind(runLoop);
    as.bge(pos, limit, runEnd);
    as.slti(t1, run, 255);
    as.beq(t1, RegZero, runEnd);
    as.lb(t2, pos, 0);
    as.bne(t2, val, runEnd);
    as.addi(run, run, 1);
    as.addi(pos, pos, 1);
    as.jmp(runLoop);
    as.bind(runEnd);

    as.sb(val, rle, 0);
    as.sb(run, rle, 1);
    as.addi(rle, rle, 2);
    as.jmp(rleLoop);
    as.bind(rleEnd);

    // ---- Phase 2: move-to-front over the RLE byte stream. ----
    as.li(mtfB, static_cast<int64_t>(mtfTable));
    as.li(t1, 0);
    Label initLoop = as.newLabel();
    Label initEnd = as.newLabel();
    as.bind(initLoop);
    as.slti(t2, t1, 256);
    as.beq(t2, RegZero, initEnd);
    as.add(t3, mtfB, t1);
    as.sb(t1, t3, 0);
    as.addi(t1, t1, 1);
    as.jmp(initLoop);
    as.bind(initEnd);

    as.li(pos, static_cast<int64_t>(rleBase));
    as.mov(end, rle);                    // end of the RLE stream
    as.li(outP, static_cast<int64_t>(mtfOut));

    Label mtfLoop = as.newLabel();
    Label mtfEnd = as.newLabel();
    Label findLoop = as.newLabel();
    Label shiftLoop = as.newLabel();
    Label shiftDone = as.newLabel();
    Label found = as.newLabel();

    as.bind(mtfLoop);
    as.bge(pos, end, mtfEnd);
    as.lb(sym, pos, 0);
    as.andi(sym, sym, 255);
    as.addi(pos, pos, 1);

    // Find the symbol's current index (always terminates: the table
    // is a permutation of 0..255).
    as.li(idx, 0);
    as.bind(findLoop);
    as.add(t1, mtfB, idx);
    as.lb(t2, t1, 0);
    as.andi(t2, t2, 255);
    as.beq(t2, sym, found);
    as.addi(idx, idx, 1);
    as.jmp(findLoop);
    as.bind(found);

    // Shift table[0..idx-1] up one slot; put the symbol in front.
    as.mov(t3, idx);
    as.bind(shiftLoop);
    as.beq(t3, RegZero, shiftDone);
    as.add(t1, mtfB, t3);
    as.lb(t2, t1, -1);
    as.sb(t2, t1, 0);
    as.addi(t3, t3, -1);
    as.jmp(shiftLoop);
    as.bind(shiftDone);
    as.sb(sym, mtfB, 0);

    as.sb(idx, outP, 0);
    as.addi(outP, outP, 1);
    as.jmp(mtfLoop);
    as.bind(mtfEnd);

    // ---- Phase 3: histogram of MTF indices + weighted cost sum. ----
    const uint8_t histB = 17;
    as.li(histB, static_cast<int64_t>(histBase));
    as.li(t1, 0);
    Label hInit = as.newLabel();
    Label hInitEnd = as.newLabel();
    as.bind(hInit);
    as.slti(t2, t1, 256);
    as.beq(t2, RegZero, hInitEnd);
    as.slli(t3, t1, 3);
    as.add(t3, t3, histB);
    as.sd(RegZero, t3, 0);
    as.addi(t1, t1, 1);
    as.jmp(hInit);
    as.bind(hInitEnd);

    as.li(pos, static_cast<int64_t>(mtfOut));
    as.mov(end, outP);
    Label hLoop = as.newLabel();
    Label hEnd = as.newLabel();
    as.bind(hLoop);
    as.bge(pos, end, hEnd);
    as.lb(sym, pos, 0);
    as.andi(sym, sym, 255);
    as.slli(t1, sym, 3);
    as.add(t1, t1, histB);
    as.ld(t2, t1, 0);
    as.addi(t2, t2, 1);
    as.sd(t2, t1, 0);
    as.addi(pos, pos, 1);
    as.jmp(hLoop);
    as.bind(hEnd);

    // Weighted "cost" reduction: acc = sum i * hist[i].
    as.li(t1, 0);
    as.li(acc, 0);
    Label sLoop = as.newLabel();
    Label sEnd = as.newLabel();
    as.bind(sLoop);
    as.slti(t2, t1, 256);
    as.beq(t2, RegZero, sEnd);
    as.slli(t3, t1, 3);
    as.add(t3, t3, histB);
    as.ld(t2, t3, 0);
    as.mul(t2, t2, t1);
    as.add(acc, acc, t2);
    as.addi(t1, t1, 1);
    as.jmp(sLoop);
    as.bind(sEnd);
    as.sd(acc, histB, 2040);

    as.halt();
    return as.finish();
}

} // namespace ssim::workloads
