/**
 * @file
 * "raytrace" — eon archetype: a sphere-intersection ray caster.
 * Dominated by floating-point multiply/divide/sqrt chains with a
 * hit/miss branch per sphere.
 */

#include "data_gen.hh"
#include "isa/assembler.hh"
#include "workload.hh"

namespace ssim::workloads
{

isa::Program
buildRaytrace(uint64_t scale, uint64_t variant)
{
    using namespace isa;

    constexpr int width = 80;
    const int height = static_cast<int>(32 * scale);
    constexpr int numSpheres = 24;
    constexpr uint64_t sphBase = 0;              // cx,cy,cz,r doubles
    const uint64_t imgBase = 4096;

    Assembler as("raytrace");
    as.setDataSize(imgBase + static_cast<uint64_t>(width) * height +
                   4096);

    // Scene: a deterministic cloud of spheres in front of the camera.
    {
        Rng rng(inputSeed(0xe01, variant));
        std::vector<double> spheres;
        for (int s = 0; s < numSpheres; ++s) {
            spheres.push_back(rng.uniform() * 8.0 - 4.0);   // cx
            spheres.push_back(rng.uniform() * 6.0 - 3.0);   // cy
            spheres.push_back(4.0 + rng.uniform() * 14.0);  // cz
            spheres.push_back(0.4 + rng.uniform() * 1.2);   // radius
        }
        as.addDoubles(sphBase, spheres);
    }

    const uint8_t y = 3, x = 4, s = 5, t1 = 6, t2 = 7, pix = 8;
    // FP registers.
    const uint8_t dx = 1, dy = 2, dz = 3, tmin = 4;
    const uint8_t cx = 5, cy = 6, cz = 7, rr = 8;
    const uint8_t f1 = 10, f2 = 11, f3 = 12, f4 = 13;
    const uint8_t kZero = 20, kBig = 21, kEps = 22, kOne = 23;
    const uint8_t kHalfW = 24, kW = 25, kHalfH = 26, kH = 27;
    const uint8_t kShade = 28;

    as.fli(kZero, 0.0);
    as.fli(kBig, 1e30);
    as.fli(kEps, 1e-3);
    as.fli(kOne, 1.0);
    as.fli(kHalfW, width / 2.0);
    as.fli(kW, static_cast<double>(width));
    as.fli(kHalfH, height / 2.0);
    as.fli(kH, static_cast<double>(height));
    as.fli(kShade, 255.0);

    Label yLoop = as.newLabel();
    Label yEnd = as.newLabel();
    Label xLoop = as.newLabel();
    Label xEnd = as.newLabel();
    Label sLoop = as.newLabel();
    Label sEnd = as.newLabel();
    Label sSkip = as.newLabel();
    Label miss = as.newLabel();
    Label havePix = as.newLabel();

    as.li(y, 0);
    as.bind(yLoop);
    as.li(t1, height);
    as.bge(y, t1, yEnd);
    as.li(x, 0);
    as.bind(xLoop);
    as.li(t1, width);
    as.bge(x, t1, xEnd);

    // Ray direction: ((x - W/2)/W, (y - H/2)/H, 1), normalized.
    as.fcvtif(dx, x);
    as.fsub(dx, dx, kHalfW);
    as.fdiv(dx, dx, kW);
    as.fcvtif(dy, y);
    as.fsub(dy, dy, kHalfH);
    as.fdiv(dy, dy, kH);
    as.fmov(dz, kOne);
    as.fmul(f1, dx, dx);
    as.fmul(f2, dy, dy);
    as.fadd(f1, f1, f2);
    as.fadd(f1, f1, kOne);        // dz^2 == 1
    as.fsqrt(f1, f1);
    as.fdiv(dx, dx, f1);
    as.fdiv(dy, dy, f1);
    as.fdiv(dz, dz, f1);

    as.fmov(tmin, kBig);
    as.li(s, 0);
    as.bind(sLoop);
    as.li(t1, numSpheres);
    as.bge(s, t1, sEnd);
    as.slli(t1, s, 5);            // 4 doubles per sphere
    as.fld(cx, t1, sphBase + 0);
    as.fld(cy, t1, sphBase + 8);
    as.fld(cz, t1, sphBase + 16);
    as.fld(rr, t1, sphBase + 24);

    // dot = d . c;  cc = c . c - r^2;  disc = dot^2 - cc
    as.fmul(f1, dx, cx);
    as.fmul(f2, dy, cy);
    as.fadd(f1, f1, f2);
    as.fmul(f2, dz, cz);
    as.fadd(f1, f1, f2);          // f1 = dot
    as.fmul(f2, cx, cx);
    as.fmul(f3, cy, cy);
    as.fadd(f2, f2, f3);
    as.fmul(f3, cz, cz);
    as.fadd(f2, f2, f3);
    as.fmul(f3, rr, rr);
    as.fsub(f2, f2, f3);          // f2 = cc - r^2
    as.fmul(f3, f1, f1);
    as.fsub(f3, f3, f2);          // f3 = disc
    as.fblt(f3, kZero, sSkip);
    as.fsqrt(f3, f3);
    as.fsub(f4, f1, f3);          // nearest root
    as.fblt(f4, kEps, sSkip);
    as.fbge(f4, tmin, sSkip);
    as.fmov(tmin, f4);
    as.bind(sSkip);
    as.addi(s, s, 1);
    as.jmp(sLoop);
    as.bind(sEnd);

    // Shade: 255 / (1 + t) on a hit, 0 on a miss.
    as.fbge(tmin, kBig, miss);
    as.fadd(f1, tmin, kOne);
    as.fdiv(f1, kShade, f1);
    as.fcvtfi(pix, f1);
    as.jmp(havePix);
    as.bind(miss);
    as.li(pix, 0);
    as.bind(havePix);

    as.li(t1, width);
    as.mul(t2, y, t1);
    as.add(t2, t2, x);
    as.sb(pix, t2, static_cast<int64_t>(imgBase));

    as.addi(x, x, 1);
    as.jmp(xLoop);
    as.bind(xEnd);
    as.addi(y, y, 1);
    as.jmp(yLoop);
    as.bind(yEnd);
    as.halt();
    return as.finish();
}

} // namespace ssim::workloads
