#include "data_gen.hh"

namespace ssim::workloads
{

std::vector<uint8_t>
makeText(size_t bytes, uint64_t seed)
{
    static const char *vocabulary[] = {
        "the", "quick", "brown", "fox", "jumps", "over", "lazy",
        "dog", "pack", "my", "box", "with", "five", "dozen",
        "liquor", "jugs", "compiler", "register", "pipeline",
        "cache", "branch", "predictor", "simulation", "trace",
        "statistical", "flow", "graph", "basic", "block", "and",
        "of", "to", "in", "a", "is", "for", "on", "as", "by",
    };
    constexpr size_t vocabSize =
        sizeof(vocabulary) / sizeof(vocabulary[0]);

    Rng rng(seed);
    std::vector<uint8_t> out;
    out.reserve(bytes + 16);
    while (out.size() < bytes) {
        const char *word = vocabulary[rng.below(vocabSize)];
        for (const char *p = word; *p; ++p)
            out.push_back(static_cast<uint8_t>(*p));
        out.push_back(rng.chance(0.12) ? '\n' : ' ');
    }
    out.resize(bytes);
    if (!out.empty())
        out[bytes - 1] = '\n';
    return out;
}

std::vector<uint8_t>
makeRunsData(size_t bytes, uint64_t seed)
{
    Rng rng(seed);
    std::vector<uint8_t> out;
    out.reserve(bytes + 64);
    while (out.size() < bytes) {
        if (rng.chance(0.6)) {
            const uint8_t value = static_cast<uint8_t>(rng.below(32));
            const size_t run = 2 + rng.below(40);
            for (size_t i = 0; i < run; ++i)
                out.push_back(value);
        } else {
            const size_t noise = 1 + rng.below(8);
            for (size_t i = 0; i < noise; ++i)
                out.push_back(static_cast<uint8_t>(rng.below(256)));
        }
    }
    out.resize(bytes);
    return out;
}

std::vector<uint8_t>
makeRandomBytes(size_t bytes, uint64_t seed)
{
    Rng rng(seed);
    std::vector<uint8_t> out(bytes);
    for (auto &b : out)
        b = static_cast<uint8_t>(rng.below(256));
    return out;
}

} // namespace ssim::workloads
