/**
 * @file
 * The benchmark suite: ten workloads written in the mini ISA, one per
 * SPECint2000 archetype of the paper's Table 1. Each workload is a
 * real program (loops, calls, recursion, data-dependent control flow)
 * built through the assembler; inputs are deterministic and seeded.
 *
 * | name     | archetype | stresses                                  |
 * |----------|-----------|-------------------------------------------|
 * | compress | bzip2     | RLE/MTF byte processing, store traffic    |
 * | chess    | crafty    | recursive game search, calls/returns      |
 * | raytrace | eon       | FP mult/div/sqrt pipelines                |
 * | cc       | gcc       | many blocks, jump-table token dispatch    |
 * | zip      | gzip      | LZ77 hash-chain matching, inner loops     |
 * | parse    | parser    | tokenizing, chained-hash dictionary       |
 * | perl     | perlbmk   | bytecode interpreter, indirect branches   |
 * | place    | twolf     | simulated annealing, unpredictable accept |
 * | oodb     | vortex    | object DB, pointer chasing                |
 * | route    | vpr       | maze routing wavefront over a grid        |
 */

#ifndef SSIM_WORKLOADS_WORKLOAD_HH
#define SSIM_WORKLOADS_WORKLOAD_HH

#include <string>
#include <vector>

#include "isa/program.hh"

namespace ssim::workloads
{

/** Registry entry describing one workload. */
struct WorkloadInfo
{
    std::string name;
    std::string archetype;     ///< SPECint2000 benchmark it mirrors
    std::string description;
};

/** All available workloads, in suite order. */
const std::vector<WorkloadInfo> &suite();

/**
 * Build a workload program by name.
 *
 * @param scale multiplies the input size / iteration count; scale 1
 *        yields roughly 0.5-3 million dynamic instructions.
 * @param variant selects an alternative input data set (different
 *        text/seeds, identical code) — the "reference vs train
 *        input" axis for input-sensitivity studies. Variant 0 is the
 *        default input used throughout the evaluation.
 * @throws ssim::Error (ErrorCategory::UnknownWorkload) when @p name
 *         is not in suite(); the message lists the valid names.
 */
isa::Program build(const std::string &name, uint64_t scale = 1,
                   uint64_t variant = 0);

/** Mix an input variant into a data-generation seed. */
inline uint64_t
inputSeed(uint64_t base, uint64_t variant)
{
    return base + variant * 0x9e3779b97f4a7c15ULL;
}

// Individual builders (each in its own translation unit).
isa::Program buildCompress(uint64_t scale, uint64_t variant = 0);
isa::Program buildChess(uint64_t scale, uint64_t variant = 0);
isa::Program buildRaytrace(uint64_t scale, uint64_t variant = 0);
isa::Program buildCc(uint64_t scale, uint64_t variant = 0);
isa::Program buildZip(uint64_t scale, uint64_t variant = 0);
isa::Program buildParse(uint64_t scale, uint64_t variant = 0);
isa::Program buildPerl(uint64_t scale, uint64_t variant = 0);
isa::Program buildPlace(uint64_t scale, uint64_t variant = 0);
isa::Program buildOodb(uint64_t scale, uint64_t variant = 0);
isa::Program buildRoute(uint64_t scale, uint64_t variant = 0);

} // namespace ssim::workloads

#endif // SSIM_WORKLOADS_WORKLOAD_HH
