/**
 * @file
 * Quickstart: the complete statistical simulation flow on one
 * workload, validated against execution-driven simulation.
 *
 *   1. build a workload program,
 *   2. profile it (statistical flow graph + locality events),
 *   3. generate a synthetic trace,
 *   4. simulate the synthetic trace,
 *   5. compare IPC/EPC against the execution-driven reference.
 *
 * Usage: quickstart [workload] [sfg-order] [reduction-factor]
 */

#include <cstdlib>
#include <iostream>
#include <string>

#include "core/statsim.hh"
#include "util/statistics.hh"
#include "util/table.hh"
#include "workloads/workload.hh"

int
main(int argc, char **argv)
{
    using namespace ssim;

    const std::string name = argc > 1 ? argv[1] : "zip";
    const int order = argc > 2 ? std::atoi(argv[2]) : 1;
    const uint64_t reduction = argc > 3 ? std::atoll(argv[3]) : 20;

    std::cout << "building workload '" << name << "'...\n";
    const isa::Program prog = workloads::build(name);
    std::cout << "  " << prog.size() << " static instructions, "
              << prog.numBlocks() << " basic blocks\n";

    const cpu::CoreConfig cfg = cpu::CoreConfig::baseline();

    std::cout << "profiling (SFG order k=" << order << ")...\n";
    core::ProfileOptions popts;
    popts.order = order;
    const core::StatisticalProfile profile =
        core::buildProfile(prog, cfg, popts);
    std::cout << "  " << profile.instructions
              << " instructions profiled, " << profile.nodeCount()
              << " SFG nodes, " << profile.qualifiedBlockCount()
              << " qualified basic blocks\n";

    std::cout << "generating synthetic trace (R=" << reduction
              << ")...\n";
    core::GenerationOptions gopts;
    gopts.reductionFactor = reduction;
    const core::SyntheticTrace trace =
        core::generateSyntheticTrace(profile, gopts);
    std::cout << "  " << trace.size() << " synthetic instructions\n";

    std::cout << "simulating synthetic trace...\n";
    const core::SimResult ss = core::simulateSyntheticTrace(trace, cfg);

    std::cout << "running execution-driven reference...\n";
    const core::SimResult eds = core::runExecutionDriven(prog, cfg);

    TextTable table;
    table.setHeader({"metric", "statistical", "execution-driven",
                     "abs error"});
    table.addRow({"IPC", TextTable::num(ss.ipc),
                  TextTable::num(eds.ipc),
                  TextTable::pct(absoluteError(ss.ipc, eds.ipc))});
    table.addRow({"EPC (W)", TextTable::num(ss.epc, 2),
                  TextTable::num(eds.epc, 2),
                  TextTable::pct(absoluteError(ss.epc, eds.epc))});
    table.addRow({"EDP", TextTable::num(ss.edp, 2),
                  TextTable::num(eds.edp, 2),
                  TextTable::pct(absoluteError(ss.edp, eds.edp))});
    table.addRow({"cycles", std::to_string(ss.stats.cycles),
                  std::to_string(eds.stats.cycles), ""});
    table.addRow({"committed", std::to_string(ss.stats.committed),
                  std::to_string(eds.stats.committed), ""});
    table.print(std::cout);
    return 0;
}
