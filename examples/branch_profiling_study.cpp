/**
 * @file
 * Branch profiling study: demonstrates why delayed update matters
 * (the paper's second contribution). For one workload, the example
 * reports the misprediction rate seen by an execution-driven run and
 * by the two profiling styles, across predictor flavours and sizes —
 * the kind of study the profiling infrastructure makes cheap.
 *
 * Usage: branch_profiling_study [workload]
 */

#include <iostream>
#include <string>

#include "core/profiler.hh"
#include "core/statsim.hh"
#include "util/table.hh"
#include "workloads/workload.hh"

namespace
{

using namespace ssim;

double
profiledRate(const isa::Program &prog, const cpu::CoreConfig &cfg,
             core::BranchProfilingMode mode)
{
    core::ProfileOptions opts;
    opts.branchMode = mode;
    return core::buildProfile(prog, cfg, opts).mispredictsPerKilo();
}

} // namespace

int
main(int argc, char **argv)
{
    const std::string name = argc > 1 ? argv[1] : "chess";
    const isa::Program prog = workloads::build(name);

    struct Flavour
    {
        std::string label;
        cpu::BpredConfig bpred;
    };
    std::vector<Flavour> flavours;
    {
        cpu::BpredConfig hybrid;   // Table 2 default
        flavours.push_back({"hybrid 8K (base)", hybrid});
        flavours.push_back({"hybrid 2K", hybrid.scaled(-2)});
        flavours.push_back({"hybrid 32K", hybrid.scaled(2)});
        cpu::BpredConfig bimodal;
        bimodal.kind = cpu::BpredKind::Bimodal;
        flavours.push_back({"bimodal 8K", bimodal});
        cpu::BpredConfig twoLevel;
        twoLevel.kind = cpu::BpredKind::TwoLevel;
        flavours.push_back({"two-level 8Kx8K", twoLevel});
        cpu::BpredConfig taken;
        taken.kind = cpu::BpredKind::Taken;
        flavours.push_back({"static taken", taken});
    }

    std::cout << "branch behaviour of '" << name
              << "' (mispredictions per 1000 instructions)\n\n";
    TextTable table;
    table.setHeader({"predictor", "execution-driven",
                     "immediate profiling", "delayed profiling"});
    for (const Flavour &f : flavours) {
        cpu::CoreConfig cfg = cpu::CoreConfig::baseline();
        cfg.bpred = f.bpred;
        const core::SimResult eds =
            core::runExecutionDriven(prog, cfg);
        const double imm = profiledRate(
            prog, cfg, core::BranchProfilingMode::ImmediateUpdate);
        const double del = profiledRate(
            prog, cfg, core::BranchProfilingMode::DelayedUpdate);
        table.addRow({f.label,
                      TextTable::num(eds.stats.mispredictsPerKilo(),
                                     2),
                      TextTable::num(imm, 2),
                      TextTable::num(del, 2)});
    }
    table.print(std::cout);
    std::cout << "\nDelayed-update profiling (FIFO sized like the "
                 "IFQ, squash-and-replay on mispredicts) tracks the "
                 "pipeline's view of the predictor; immediate update "
                 "is systematically optimistic for history-based "
                 "predictors.\n";
    return 0;
}
