/**
 * @file
 * Phase analysis example: applies the SimPoint substrate (BBVs,
 * k-means with BIC) to a workload, prints the discovered phase
 * structure, and compares three ways of estimating whole-run IPC:
 * full execution-driven simulation, SimPoint-sampled simulation, and
 * statistical simulation.
 *
 * Usage: phase_analysis [workload] [interval]
 */

#include <cstdlib>
#include <iostream>
#include <string>

#include "core/statsim.hh"
#include "sampling/simpoint.hh"
#include "util/statistics.hh"
#include "util/table.hh"
#include "workloads/workload.hh"

int
main(int argc, char **argv)
{
    using namespace ssim;

    const std::string name = argc > 1 ? argv[1] : "compress";
    const uint64_t interval =
        argc > 2 ? std::atoll(argv[2]) : 100000;

    const isa::Program prog = workloads::build(name);
    const cpu::CoreConfig cfg = cpu::CoreConfig::baseline();

    std::cout << "collecting basic-block vectors ('" << name
              << "', interval " << interval << ")...\n";
    const sampling::BbvData bbvs =
        sampling::collectBbvs(prog, interval);
    std::cout << "  " << bbvs.vectors.size() << " intervals\n";

    const auto points = sampling::pickSimPoints(bbvs, 10);
    std::cout << "  " << points.size()
              << " phases found (BIC-selected k-means)\n\n";

    TextTable phases;
    phases.setHeader({"phase", "representative interval", "weight"});
    for (size_t i = 0; i < points.size(); ++i) {
        phases.addRow({std::to_string(i),
                       std::to_string(points[i].interval),
                       TextTable::pct(points[i].weight)});
    }
    phases.print(std::cout);

    std::cout << "\ncomparing whole-run IPC estimates...\n";
    const core::SimResult full = core::runExecutionDriven(prog, cfg);
    const sampling::SampledResult sampled =
        sampling::simulateSimPoints(prog, cfg, points, interval);
    const core::SimResult ss =
        core::runStatisticalSimulation(prog, cfg);

    TextTable table;
    table.setHeader({"method", "IPC", "error", "simulated insts"});
    table.addRow({"execution-driven (reference)",
                  TextTable::num(full.ipc),
                  "-", std::to_string(full.stats.committed)});
    table.addRow({"SimPoint sampling",
                  TextTable::num(sampled.ipc),
                  TextTable::pct(absoluteError(sampled.ipc,
                                               full.ipc)),
                  std::to_string(sampled.simulatedInstructions)});
    table.addRow({"statistical simulation",
                  TextTable::num(ss.ipc),
                  TextTable::pct(absoluteError(ss.ipc, full.ipc)),
                  std::to_string(ss.stats.committed)});
    table.print(std::cout);
    std::cout << "\nSimPoint is usually a little more accurate; "
                 "statistical simulation needs far fewer simulated "
                 "instructions and no detailed-simulator rerun when "
                 "exploring core parameters (section 4.4).\n";
    return 0;
}
