/**
 * @file
 * Design-space exploration example: the intended production use of
 * the library (section 4.6 workflow). One statistical profile and one
 * synthetic trace per workload are reused to score hundreds of
 * candidate core configurations by energy-delay product in seconds,
 * then the best few candidates are confirmed with execution-driven
 * simulation.
 *
 * Usage: design_space_explorer [workload] [topN]
 */

#include <algorithm>
#include <cstdlib>
#include <iostream>
#include <string>
#include <vector>

#include "core/statsim.hh"
#include "util/table.hh"
#include "workloads/workload.hh"

int
main(int argc, char **argv)
{
    using namespace ssim;

    const std::string name = argc > 1 ? argv[1] : "route";
    const size_t topN = argc > 2 ? std::atoi(argv[2]) : 5;

    std::cout << "profiling '" << name << "' once...\n";
    const isa::Program prog = workloads::build(name);
    const cpu::CoreConfig base = cpu::CoreConfig::baseline();
    const core::StatisticalProfile profile =
        core::buildProfile(prog, base);
    core::GenerationOptions gopts;
    gopts.reductionFactor =
        std::max<uint64_t>(2, profile.instructions / 25000);
    const core::SyntheticTrace trace =
        core::generateSyntheticTrace(profile, gopts);
    std::cout << "  synthetic trace: " << trace.size()
              << " instructions (R=" << gopts.reductionFactor
              << ")\n";

    // Candidate space: window x width.
    struct Candidate
    {
        cpu::CoreConfig cfg;
        std::string label;
        double edp = 0.0;
    };
    std::vector<Candidate> candidates;
    for (uint32_t ruu : {16u, 32u, 48u, 64u, 96u, 128u}) {
        for (uint32_t width : {2u, 4u, 6u, 8u}) {
            cpu::CoreConfig cfg = base;
            cfg.ruuSize = ruu;
            cfg.lsqSize = std::max(4u, ruu / 2);
            cfg.decodeWidth = cfg.issueWidth = cfg.commitWidth =
                width;
            candidates.push_back(
                {cfg, "ruu=" + std::to_string(ruu) + " width=" +
                 std::to_string(width)});
        }
    }

    std::cout << "scoring " << candidates.size()
              << " design points with statistical simulation...\n";
    for (Candidate &c : candidates)
        c.edp = core::simulateSyntheticTrace(trace, c.cfg).edp;
    std::sort(candidates.begin(), candidates.end(),
              [](const Candidate &a, const Candidate &b) {
                  return a.edp < b.edp;
              });

    std::cout << "confirming the top " << topN
              << " with execution-driven simulation...\n\n";
    TextTable table;
    table.setHeader({"design point", "EDP (SS)", "EDP (EDS)",
                     "IPC (EDS)", "EPC (EDS)"});
    for (size_t i = 0; i < topN && i < candidates.size(); ++i) {
        const Candidate &c = candidates[i];
        const core::SimResult eds =
            core::runExecutionDriven(prog, c.cfg);
        table.addRow({c.label, TextTable::num(c.edp, 2),
                      TextTable::num(eds.edp, 2),
                      TextTable::num(eds.ipc, 2),
                      TextTable::num(eds.epc, 1)});
    }
    table.print(std::cout);
    std::cout << "\nThe statistical ranking identifies the "
                 "energy-efficient region; detailed simulation "
                 "confirms only the shortlist.\n";
    return 0;
}
