# Empty compiler generated dependencies file for branch_profiling_study.
# This may be replaced when dependencies are built.
