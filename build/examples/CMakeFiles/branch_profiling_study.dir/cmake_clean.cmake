file(REMOVE_RECURSE
  "CMakeFiles/branch_profiling_study.dir/branch_profiling_study.cpp.o"
  "CMakeFiles/branch_profiling_study.dir/branch_profiling_study.cpp.o.d"
  "branch_profiling_study"
  "branch_profiling_study.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/branch_profiling_study.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
