file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_inorder.dir/bench_ext_inorder.cc.o"
  "CMakeFiles/bench_ext_inorder.dir/bench_ext_inorder.cc.o.d"
  "bench_ext_inorder"
  "bench_ext_inorder.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_inorder.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
