# Empty compiler generated dependencies file for bench_ext_inorder.
# This may be replaced when dependencies are built.
