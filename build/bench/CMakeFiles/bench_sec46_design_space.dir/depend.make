# Empty dependencies file for bench_sec46_design_space.
# This may be replaced when dependencies are built.
