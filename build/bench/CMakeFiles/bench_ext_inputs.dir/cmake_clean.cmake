file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_inputs.dir/bench_ext_inputs.cc.o"
  "CMakeFiles/bench_ext_inputs.dir/bench_ext_inputs.cc.o.d"
  "bench_ext_inputs"
  "bench_ext_inputs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_inputs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
