# Empty dependencies file for bench_ext_inputs.
# This may be replaced when dependencies are built.
