# Empty dependencies file for bench_table3_sfg_nodes.
# This may be replaced when dependencies are built.
