
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_table4_relative.cc" "bench/CMakeFiles/bench_table4_relative.dir/bench_table4_relative.cc.o" "gcc" "bench/CMakeFiles/bench_table4_relative.dir/bench_table4_relative.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/experiments/CMakeFiles/ssim_experiments.dir/DependInfo.cmake"
  "/root/repo/build/src/baselines/CMakeFiles/ssim_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/sampling/CMakeFiles/ssim_sampling.dir/DependInfo.cmake"
  "/root/repo/build/src/workloads/CMakeFiles/ssim_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/ssim_core.dir/DependInfo.cmake"
  "/root/repo/build/src/power/CMakeFiles/ssim_power.dir/DependInfo.cmake"
  "/root/repo/build/src/cpu/CMakeFiles/ssim_cpu.dir/DependInfo.cmake"
  "/root/repo/build/src/isa/CMakeFiles/ssim_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/ssim_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
