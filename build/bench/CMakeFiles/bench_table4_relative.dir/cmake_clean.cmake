file(REMOVE_RECURSE
  "CMakeFiles/bench_table4_relative.dir/bench_table4_relative.cc.o"
  "CMakeFiles/bench_table4_relative.dir/bench_table4_relative.cc.o.d"
  "bench_table4_relative"
  "bench_table4_relative.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table4_relative.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
