# Empty dependencies file for bench_table4_relative.
# This may be replaced when dependencies are built.
