file(REMOVE_RECURSE
  "CMakeFiles/bench_sec41_convergence.dir/bench_sec41_convergence.cc.o"
  "CMakeFiles/bench_sec41_convergence.dir/bench_sec41_convergence.cc.o.d"
  "bench_sec41_convergence"
  "bench_sec41_convergence.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sec41_convergence.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
