# Empty dependencies file for bench_fig4_sfg_order.
# This may be replaced when dependencies are built.
