# Empty compiler generated dependencies file for bench_fig3_branch_profiling.
# This may be replaced when dependencies are built.
