file(REMOVE_RECURSE
  "CMakeFiles/bench_fig3_branch_profiling.dir/bench_fig3_branch_profiling.cc.o"
  "CMakeFiles/bench_fig3_branch_profiling.dir/bench_fig3_branch_profiling.cc.o.d"
  "bench_fig3_branch_profiling"
  "bench_fig3_branch_profiling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig3_branch_profiling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
