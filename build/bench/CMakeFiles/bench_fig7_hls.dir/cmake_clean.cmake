file(REMOVE_RECURSE
  "CMakeFiles/bench_fig7_hls.dir/bench_fig7_hls.cc.o"
  "CMakeFiles/bench_fig7_hls.dir/bench_fig7_hls.cc.o.d"
  "bench_fig7_hls"
  "bench_fig7_hls.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_hls.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
