# Empty dependencies file for bench_fig7_hls.
# This may be replaced when dependencies are built.
