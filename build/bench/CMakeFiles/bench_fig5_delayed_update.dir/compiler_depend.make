# Empty compiler generated dependencies file for bench_fig5_delayed_update.
# This may be replaced when dependencies are built.
