# Empty dependencies file for bench_fig6_ipc_epc.
# This may be replaced when dependencies are built.
