file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6_ipc_epc.dir/bench_fig6_ipc_epc.cc.o"
  "CMakeFiles/bench_fig6_ipc_epc.dir/bench_fig6_ipc_epc.cc.o.d"
  "bench_fig6_ipc_epc"
  "bench_fig6_ipc_epc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_ipc_epc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
