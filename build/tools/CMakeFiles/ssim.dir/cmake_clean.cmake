file(REMOVE_RECURSE
  "CMakeFiles/ssim.dir/ssim_cli.cc.o"
  "CMakeFiles/ssim.dir/ssim_cli.cc.o.d"
  "ssim"
  "ssim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ssim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
