# Empty compiler generated dependencies file for ssim.
# This may be replaced when dependencies are built.
