# Empty dependencies file for ssim_integration_tests.
# This may be replaced when dependencies are built.
