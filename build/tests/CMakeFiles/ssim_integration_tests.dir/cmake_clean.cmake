file(REMOVE_RECURSE
  "CMakeFiles/ssim_integration_tests.dir/test_eds.cc.o"
  "CMakeFiles/ssim_integration_tests.dir/test_eds.cc.o.d"
  "CMakeFiles/ssim_integration_tests.dir/test_eds_edge.cc.o"
  "CMakeFiles/ssim_integration_tests.dir/test_eds_edge.cc.o.d"
  "CMakeFiles/ssim_integration_tests.dir/test_generator.cc.o"
  "CMakeFiles/ssim_integration_tests.dir/test_generator.cc.o.d"
  "CMakeFiles/ssim_integration_tests.dir/test_harness.cc.o"
  "CMakeFiles/ssim_integration_tests.dir/test_harness.cc.o.d"
  "CMakeFiles/ssim_integration_tests.dir/test_hls.cc.o"
  "CMakeFiles/ssim_integration_tests.dir/test_hls.cc.o.d"
  "CMakeFiles/ssim_integration_tests.dir/test_inorder.cc.o"
  "CMakeFiles/ssim_integration_tests.dir/test_inorder.cc.o.d"
  "CMakeFiles/ssim_integration_tests.dir/test_profiler.cc.o"
  "CMakeFiles/ssim_integration_tests.dir/test_profiler.cc.o.d"
  "CMakeFiles/ssim_integration_tests.dir/test_report.cc.o"
  "CMakeFiles/ssim_integration_tests.dir/test_report.cc.o.d"
  "CMakeFiles/ssim_integration_tests.dir/test_sampling.cc.o"
  "CMakeFiles/ssim_integration_tests.dir/test_sampling.cc.o.d"
  "CMakeFiles/ssim_integration_tests.dir/test_serialize.cc.o"
  "CMakeFiles/ssim_integration_tests.dir/test_serialize.cc.o.d"
  "CMakeFiles/ssim_integration_tests.dir/test_statsim.cc.o"
  "CMakeFiles/ssim_integration_tests.dir/test_statsim.cc.o.d"
  "CMakeFiles/ssim_integration_tests.dir/test_workloads.cc.o"
  "CMakeFiles/ssim_integration_tests.dir/test_workloads.cc.o.d"
  "ssim_integration_tests"
  "ssim_integration_tests.pdb"
  "ssim_integration_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ssim_integration_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
