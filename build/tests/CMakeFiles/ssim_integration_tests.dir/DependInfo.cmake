
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_eds.cc" "tests/CMakeFiles/ssim_integration_tests.dir/test_eds.cc.o" "gcc" "tests/CMakeFiles/ssim_integration_tests.dir/test_eds.cc.o.d"
  "/root/repo/tests/test_eds_edge.cc" "tests/CMakeFiles/ssim_integration_tests.dir/test_eds_edge.cc.o" "gcc" "tests/CMakeFiles/ssim_integration_tests.dir/test_eds_edge.cc.o.d"
  "/root/repo/tests/test_generator.cc" "tests/CMakeFiles/ssim_integration_tests.dir/test_generator.cc.o" "gcc" "tests/CMakeFiles/ssim_integration_tests.dir/test_generator.cc.o.d"
  "/root/repo/tests/test_harness.cc" "tests/CMakeFiles/ssim_integration_tests.dir/test_harness.cc.o" "gcc" "tests/CMakeFiles/ssim_integration_tests.dir/test_harness.cc.o.d"
  "/root/repo/tests/test_hls.cc" "tests/CMakeFiles/ssim_integration_tests.dir/test_hls.cc.o" "gcc" "tests/CMakeFiles/ssim_integration_tests.dir/test_hls.cc.o.d"
  "/root/repo/tests/test_inorder.cc" "tests/CMakeFiles/ssim_integration_tests.dir/test_inorder.cc.o" "gcc" "tests/CMakeFiles/ssim_integration_tests.dir/test_inorder.cc.o.d"
  "/root/repo/tests/test_profiler.cc" "tests/CMakeFiles/ssim_integration_tests.dir/test_profiler.cc.o" "gcc" "tests/CMakeFiles/ssim_integration_tests.dir/test_profiler.cc.o.d"
  "/root/repo/tests/test_report.cc" "tests/CMakeFiles/ssim_integration_tests.dir/test_report.cc.o" "gcc" "tests/CMakeFiles/ssim_integration_tests.dir/test_report.cc.o.d"
  "/root/repo/tests/test_sampling.cc" "tests/CMakeFiles/ssim_integration_tests.dir/test_sampling.cc.o" "gcc" "tests/CMakeFiles/ssim_integration_tests.dir/test_sampling.cc.o.d"
  "/root/repo/tests/test_serialize.cc" "tests/CMakeFiles/ssim_integration_tests.dir/test_serialize.cc.o" "gcc" "tests/CMakeFiles/ssim_integration_tests.dir/test_serialize.cc.o.d"
  "/root/repo/tests/test_statsim.cc" "tests/CMakeFiles/ssim_integration_tests.dir/test_statsim.cc.o" "gcc" "tests/CMakeFiles/ssim_integration_tests.dir/test_statsim.cc.o.d"
  "/root/repo/tests/test_workloads.cc" "tests/CMakeFiles/ssim_integration_tests.dir/test_workloads.cc.o" "gcc" "tests/CMakeFiles/ssim_integration_tests.dir/test_workloads.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/ssim_core.dir/DependInfo.cmake"
  "/root/repo/build/src/workloads/CMakeFiles/ssim_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/baselines/CMakeFiles/ssim_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/sampling/CMakeFiles/ssim_sampling.dir/DependInfo.cmake"
  "/root/repo/build/src/experiments/CMakeFiles/ssim_experiments.dir/DependInfo.cmake"
  "/root/repo/build/src/power/CMakeFiles/ssim_power.dir/DependInfo.cmake"
  "/root/repo/build/src/cpu/CMakeFiles/ssim_cpu.dir/DependInfo.cmake"
  "/root/repo/build/src/isa/CMakeFiles/ssim_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/ssim_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
