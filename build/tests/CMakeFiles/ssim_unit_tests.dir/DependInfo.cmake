
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_assembler.cc" "tests/CMakeFiles/ssim_unit_tests.dir/test_assembler.cc.o" "gcc" "tests/CMakeFiles/ssim_unit_tests.dir/test_assembler.cc.o.d"
  "/root/repo/tests/test_bpred.cc" "tests/CMakeFiles/ssim_unit_tests.dir/test_bpred.cc.o" "gcc" "tests/CMakeFiles/ssim_unit_tests.dir/test_bpred.cc.o.d"
  "/root/repo/tests/test_cache.cc" "tests/CMakeFiles/ssim_unit_tests.dir/test_cache.cc.o" "gcc" "tests/CMakeFiles/ssim_unit_tests.dir/test_cache.cc.o.d"
  "/root/repo/tests/test_config.cc" "tests/CMakeFiles/ssim_unit_tests.dir/test_config.cc.o" "gcc" "tests/CMakeFiles/ssim_unit_tests.dir/test_config.cc.o.d"
  "/root/repo/tests/test_emulator.cc" "tests/CMakeFiles/ssim_unit_tests.dir/test_emulator.cc.o" "gcc" "tests/CMakeFiles/ssim_unit_tests.dir/test_emulator.cc.o.d"
  "/root/repo/tests/test_isa.cc" "tests/CMakeFiles/ssim_unit_tests.dir/test_isa.cc.o" "gcc" "tests/CMakeFiles/ssim_unit_tests.dir/test_isa.cc.o.d"
  "/root/repo/tests/test_pipeline.cc" "tests/CMakeFiles/ssim_unit_tests.dir/test_pipeline.cc.o" "gcc" "tests/CMakeFiles/ssim_unit_tests.dir/test_pipeline.cc.o.d"
  "/root/repo/tests/test_power.cc" "tests/CMakeFiles/ssim_unit_tests.dir/test_power.cc.o" "gcc" "tests/CMakeFiles/ssim_unit_tests.dir/test_power.cc.o.d"
  "/root/repo/tests/test_profile.cc" "tests/CMakeFiles/ssim_unit_tests.dir/test_profile.cc.o" "gcc" "tests/CMakeFiles/ssim_unit_tests.dir/test_profile.cc.o.d"
  "/root/repo/tests/test_properties.cc" "tests/CMakeFiles/ssim_unit_tests.dir/test_properties.cc.o" "gcc" "tests/CMakeFiles/ssim_unit_tests.dir/test_properties.cc.o.d"
  "/root/repo/tests/test_sts.cc" "tests/CMakeFiles/ssim_unit_tests.dir/test_sts.cc.o" "gcc" "tests/CMakeFiles/ssim_unit_tests.dir/test_sts.cc.o.d"
  "/root/repo/tests/test_util.cc" "tests/CMakeFiles/ssim_unit_tests.dir/test_util.cc.o" "gcc" "tests/CMakeFiles/ssim_unit_tests.dir/test_util.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/ssim_core.dir/DependInfo.cmake"
  "/root/repo/build/src/workloads/CMakeFiles/ssim_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/power/CMakeFiles/ssim_power.dir/DependInfo.cmake"
  "/root/repo/build/src/cpu/CMakeFiles/ssim_cpu.dir/DependInfo.cmake"
  "/root/repo/build/src/isa/CMakeFiles/ssim_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/ssim_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
