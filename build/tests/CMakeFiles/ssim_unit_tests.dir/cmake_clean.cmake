file(REMOVE_RECURSE
  "CMakeFiles/ssim_unit_tests.dir/test_assembler.cc.o"
  "CMakeFiles/ssim_unit_tests.dir/test_assembler.cc.o.d"
  "CMakeFiles/ssim_unit_tests.dir/test_bpred.cc.o"
  "CMakeFiles/ssim_unit_tests.dir/test_bpred.cc.o.d"
  "CMakeFiles/ssim_unit_tests.dir/test_cache.cc.o"
  "CMakeFiles/ssim_unit_tests.dir/test_cache.cc.o.d"
  "CMakeFiles/ssim_unit_tests.dir/test_config.cc.o"
  "CMakeFiles/ssim_unit_tests.dir/test_config.cc.o.d"
  "CMakeFiles/ssim_unit_tests.dir/test_emulator.cc.o"
  "CMakeFiles/ssim_unit_tests.dir/test_emulator.cc.o.d"
  "CMakeFiles/ssim_unit_tests.dir/test_isa.cc.o"
  "CMakeFiles/ssim_unit_tests.dir/test_isa.cc.o.d"
  "CMakeFiles/ssim_unit_tests.dir/test_pipeline.cc.o"
  "CMakeFiles/ssim_unit_tests.dir/test_pipeline.cc.o.d"
  "CMakeFiles/ssim_unit_tests.dir/test_power.cc.o"
  "CMakeFiles/ssim_unit_tests.dir/test_power.cc.o.d"
  "CMakeFiles/ssim_unit_tests.dir/test_profile.cc.o"
  "CMakeFiles/ssim_unit_tests.dir/test_profile.cc.o.d"
  "CMakeFiles/ssim_unit_tests.dir/test_properties.cc.o"
  "CMakeFiles/ssim_unit_tests.dir/test_properties.cc.o.d"
  "CMakeFiles/ssim_unit_tests.dir/test_sts.cc.o"
  "CMakeFiles/ssim_unit_tests.dir/test_sts.cc.o.d"
  "CMakeFiles/ssim_unit_tests.dir/test_util.cc.o"
  "CMakeFiles/ssim_unit_tests.dir/test_util.cc.o.d"
  "ssim_unit_tests"
  "ssim_unit_tests.pdb"
  "ssim_unit_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ssim_unit_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
