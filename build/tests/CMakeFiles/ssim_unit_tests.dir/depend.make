# Empty dependencies file for ssim_unit_tests.
# This may be replaced when dependencies are built.
