# Empty dependencies file for ssim_isa.
# This may be replaced when dependencies are built.
