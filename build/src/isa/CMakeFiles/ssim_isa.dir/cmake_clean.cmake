file(REMOVE_RECURSE
  "CMakeFiles/ssim_isa.dir/assembler.cc.o"
  "CMakeFiles/ssim_isa.dir/assembler.cc.o.d"
  "CMakeFiles/ssim_isa.dir/emulator.cc.o"
  "CMakeFiles/ssim_isa.dir/emulator.cc.o.d"
  "CMakeFiles/ssim_isa.dir/isa.cc.o"
  "CMakeFiles/ssim_isa.dir/isa.cc.o.d"
  "CMakeFiles/ssim_isa.dir/program.cc.o"
  "CMakeFiles/ssim_isa.dir/program.cc.o.d"
  "libssim_isa.a"
  "libssim_isa.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ssim_isa.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
