file(REMOVE_RECURSE
  "libssim_isa.a"
)
