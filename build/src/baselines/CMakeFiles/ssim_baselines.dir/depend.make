# Empty dependencies file for ssim_baselines.
# This may be replaced when dependencies are built.
