file(REMOVE_RECURSE
  "CMakeFiles/ssim_baselines.dir/hls.cc.o"
  "CMakeFiles/ssim_baselines.dir/hls.cc.o.d"
  "libssim_baselines.a"
  "libssim_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ssim_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
