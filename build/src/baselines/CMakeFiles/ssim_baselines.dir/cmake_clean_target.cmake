file(REMOVE_RECURSE
  "libssim_baselines.a"
)
