# Empty dependencies file for ssim_power.
# This may be replaced when dependencies are built.
