file(REMOVE_RECURSE
  "CMakeFiles/ssim_power.dir/power_model.cc.o"
  "CMakeFiles/ssim_power.dir/power_model.cc.o.d"
  "libssim_power.a"
  "libssim_power.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ssim_power.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
