file(REMOVE_RECURSE
  "libssim_power.a"
)
