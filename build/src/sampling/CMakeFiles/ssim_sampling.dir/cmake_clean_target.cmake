file(REMOVE_RECURSE
  "libssim_sampling.a"
)
