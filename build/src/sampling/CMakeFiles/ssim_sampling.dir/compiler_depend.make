# Empty compiler generated dependencies file for ssim_sampling.
# This may be replaced when dependencies are built.
