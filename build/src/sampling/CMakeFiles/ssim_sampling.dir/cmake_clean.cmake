file(REMOVE_RECURSE
  "CMakeFiles/ssim_sampling.dir/simpoint.cc.o"
  "CMakeFiles/ssim_sampling.dir/simpoint.cc.o.d"
  "libssim_sampling.a"
  "libssim_sampling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ssim_sampling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
