
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cpu/bpred/branch_unit.cc" "src/cpu/CMakeFiles/ssim_cpu.dir/bpred/branch_unit.cc.o" "gcc" "src/cpu/CMakeFiles/ssim_cpu.dir/bpred/branch_unit.cc.o.d"
  "/root/repo/src/cpu/bpred/direction.cc" "src/cpu/CMakeFiles/ssim_cpu.dir/bpred/direction.cc.o" "gcc" "src/cpu/CMakeFiles/ssim_cpu.dir/bpred/direction.cc.o.d"
  "/root/repo/src/cpu/cache/cache.cc" "src/cpu/CMakeFiles/ssim_cpu.dir/cache/cache.cc.o" "gcc" "src/cpu/CMakeFiles/ssim_cpu.dir/cache/cache.cc.o.d"
  "/root/repo/src/cpu/cache/hierarchy.cc" "src/cpu/CMakeFiles/ssim_cpu.dir/cache/hierarchy.cc.o" "gcc" "src/cpu/CMakeFiles/ssim_cpu.dir/cache/hierarchy.cc.o.d"
  "/root/repo/src/cpu/config.cc" "src/cpu/CMakeFiles/ssim_cpu.dir/config.cc.o" "gcc" "src/cpu/CMakeFiles/ssim_cpu.dir/config.cc.o.d"
  "/root/repo/src/cpu/eds_frontend.cc" "src/cpu/CMakeFiles/ssim_cpu.dir/eds_frontend.cc.o" "gcc" "src/cpu/CMakeFiles/ssim_cpu.dir/eds_frontend.cc.o.d"
  "/root/repo/src/cpu/pipeline/fu_pool.cc" "src/cpu/CMakeFiles/ssim_cpu.dir/pipeline/fu_pool.cc.o" "gcc" "src/cpu/CMakeFiles/ssim_cpu.dir/pipeline/fu_pool.cc.o.d"
  "/root/repo/src/cpu/pipeline/ooo_core.cc" "src/cpu/CMakeFiles/ssim_cpu.dir/pipeline/ooo_core.cc.o" "gcc" "src/cpu/CMakeFiles/ssim_cpu.dir/pipeline/ooo_core.cc.o.d"
  "/root/repo/src/cpu/pipeline/sim_stats.cc" "src/cpu/CMakeFiles/ssim_cpu.dir/pipeline/sim_stats.cc.o" "gcc" "src/cpu/CMakeFiles/ssim_cpu.dir/pipeline/sim_stats.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/isa/CMakeFiles/ssim_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/ssim_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
