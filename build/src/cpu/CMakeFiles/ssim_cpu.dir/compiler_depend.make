# Empty compiler generated dependencies file for ssim_cpu.
# This may be replaced when dependencies are built.
