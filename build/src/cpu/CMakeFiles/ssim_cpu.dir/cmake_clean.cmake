file(REMOVE_RECURSE
  "CMakeFiles/ssim_cpu.dir/bpred/branch_unit.cc.o"
  "CMakeFiles/ssim_cpu.dir/bpred/branch_unit.cc.o.d"
  "CMakeFiles/ssim_cpu.dir/bpred/direction.cc.o"
  "CMakeFiles/ssim_cpu.dir/bpred/direction.cc.o.d"
  "CMakeFiles/ssim_cpu.dir/cache/cache.cc.o"
  "CMakeFiles/ssim_cpu.dir/cache/cache.cc.o.d"
  "CMakeFiles/ssim_cpu.dir/cache/hierarchy.cc.o"
  "CMakeFiles/ssim_cpu.dir/cache/hierarchy.cc.o.d"
  "CMakeFiles/ssim_cpu.dir/config.cc.o"
  "CMakeFiles/ssim_cpu.dir/config.cc.o.d"
  "CMakeFiles/ssim_cpu.dir/eds_frontend.cc.o"
  "CMakeFiles/ssim_cpu.dir/eds_frontend.cc.o.d"
  "CMakeFiles/ssim_cpu.dir/pipeline/fu_pool.cc.o"
  "CMakeFiles/ssim_cpu.dir/pipeline/fu_pool.cc.o.d"
  "CMakeFiles/ssim_cpu.dir/pipeline/ooo_core.cc.o"
  "CMakeFiles/ssim_cpu.dir/pipeline/ooo_core.cc.o.d"
  "CMakeFiles/ssim_cpu.dir/pipeline/sim_stats.cc.o"
  "CMakeFiles/ssim_cpu.dir/pipeline/sim_stats.cc.o.d"
  "libssim_cpu.a"
  "libssim_cpu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ssim_cpu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
