file(REMOVE_RECURSE
  "libssim_cpu.a"
)
