file(REMOVE_RECURSE
  "CMakeFiles/ssim_core.dir/generator.cc.o"
  "CMakeFiles/ssim_core.dir/generator.cc.o.d"
  "CMakeFiles/ssim_core.dir/profile.cc.o"
  "CMakeFiles/ssim_core.dir/profile.cc.o.d"
  "CMakeFiles/ssim_core.dir/profiler.cc.o"
  "CMakeFiles/ssim_core.dir/profiler.cc.o.d"
  "CMakeFiles/ssim_core.dir/report.cc.o"
  "CMakeFiles/ssim_core.dir/report.cc.o.d"
  "CMakeFiles/ssim_core.dir/serialize.cc.o"
  "CMakeFiles/ssim_core.dir/serialize.cc.o.d"
  "CMakeFiles/ssim_core.dir/statsim.cc.o"
  "CMakeFiles/ssim_core.dir/statsim.cc.o.d"
  "CMakeFiles/ssim_core.dir/sts_frontend.cc.o"
  "CMakeFiles/ssim_core.dir/sts_frontend.cc.o.d"
  "libssim_core.a"
  "libssim_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ssim_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
