file(REMOVE_RECURSE
  "libssim_core.a"
)
