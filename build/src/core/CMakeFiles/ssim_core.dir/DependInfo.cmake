
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/generator.cc" "src/core/CMakeFiles/ssim_core.dir/generator.cc.o" "gcc" "src/core/CMakeFiles/ssim_core.dir/generator.cc.o.d"
  "/root/repo/src/core/profile.cc" "src/core/CMakeFiles/ssim_core.dir/profile.cc.o" "gcc" "src/core/CMakeFiles/ssim_core.dir/profile.cc.o.d"
  "/root/repo/src/core/profiler.cc" "src/core/CMakeFiles/ssim_core.dir/profiler.cc.o" "gcc" "src/core/CMakeFiles/ssim_core.dir/profiler.cc.o.d"
  "/root/repo/src/core/report.cc" "src/core/CMakeFiles/ssim_core.dir/report.cc.o" "gcc" "src/core/CMakeFiles/ssim_core.dir/report.cc.o.d"
  "/root/repo/src/core/serialize.cc" "src/core/CMakeFiles/ssim_core.dir/serialize.cc.o" "gcc" "src/core/CMakeFiles/ssim_core.dir/serialize.cc.o.d"
  "/root/repo/src/core/statsim.cc" "src/core/CMakeFiles/ssim_core.dir/statsim.cc.o" "gcc" "src/core/CMakeFiles/ssim_core.dir/statsim.cc.o.d"
  "/root/repo/src/core/sts_frontend.cc" "src/core/CMakeFiles/ssim_core.dir/sts_frontend.cc.o" "gcc" "src/core/CMakeFiles/ssim_core.dir/sts_frontend.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/cpu/CMakeFiles/ssim_cpu.dir/DependInfo.cmake"
  "/root/repo/build/src/power/CMakeFiles/ssim_power.dir/DependInfo.cmake"
  "/root/repo/build/src/isa/CMakeFiles/ssim_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/ssim_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
