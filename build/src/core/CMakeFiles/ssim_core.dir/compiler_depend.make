# Empty compiler generated dependencies file for ssim_core.
# This may be replaced when dependencies are built.
