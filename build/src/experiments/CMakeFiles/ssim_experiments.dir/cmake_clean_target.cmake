file(REMOVE_RECURSE
  "libssim_experiments.a"
)
