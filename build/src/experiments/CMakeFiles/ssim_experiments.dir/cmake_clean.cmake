file(REMOVE_RECURSE
  "CMakeFiles/ssim_experiments.dir/harness.cc.o"
  "CMakeFiles/ssim_experiments.dir/harness.cc.o.d"
  "libssim_experiments.a"
  "libssim_experiments.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ssim_experiments.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
