# Empty compiler generated dependencies file for ssim_experiments.
# This may be replaced when dependencies are built.
