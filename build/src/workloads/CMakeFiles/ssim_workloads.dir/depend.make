# Empty dependencies file for ssim_workloads.
# This may be replaced when dependencies are built.
