file(REMOVE_RECURSE
  "libssim_workloads.a"
)
