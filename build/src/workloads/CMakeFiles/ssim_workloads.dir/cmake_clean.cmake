file(REMOVE_RECURSE
  "CMakeFiles/ssim_workloads.dir/data_gen.cc.o"
  "CMakeFiles/ssim_workloads.dir/data_gen.cc.o.d"
  "CMakeFiles/ssim_workloads.dir/wl_cc.cc.o"
  "CMakeFiles/ssim_workloads.dir/wl_cc.cc.o.d"
  "CMakeFiles/ssim_workloads.dir/wl_chess.cc.o"
  "CMakeFiles/ssim_workloads.dir/wl_chess.cc.o.d"
  "CMakeFiles/ssim_workloads.dir/wl_compress.cc.o"
  "CMakeFiles/ssim_workloads.dir/wl_compress.cc.o.d"
  "CMakeFiles/ssim_workloads.dir/wl_oodb.cc.o"
  "CMakeFiles/ssim_workloads.dir/wl_oodb.cc.o.d"
  "CMakeFiles/ssim_workloads.dir/wl_parse.cc.o"
  "CMakeFiles/ssim_workloads.dir/wl_parse.cc.o.d"
  "CMakeFiles/ssim_workloads.dir/wl_perl.cc.o"
  "CMakeFiles/ssim_workloads.dir/wl_perl.cc.o.d"
  "CMakeFiles/ssim_workloads.dir/wl_place.cc.o"
  "CMakeFiles/ssim_workloads.dir/wl_place.cc.o.d"
  "CMakeFiles/ssim_workloads.dir/wl_raytrace.cc.o"
  "CMakeFiles/ssim_workloads.dir/wl_raytrace.cc.o.d"
  "CMakeFiles/ssim_workloads.dir/wl_route.cc.o"
  "CMakeFiles/ssim_workloads.dir/wl_route.cc.o.d"
  "CMakeFiles/ssim_workloads.dir/wl_zip.cc.o"
  "CMakeFiles/ssim_workloads.dir/wl_zip.cc.o.d"
  "CMakeFiles/ssim_workloads.dir/workload.cc.o"
  "CMakeFiles/ssim_workloads.dir/workload.cc.o.d"
  "libssim_workloads.a"
  "libssim_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ssim_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
