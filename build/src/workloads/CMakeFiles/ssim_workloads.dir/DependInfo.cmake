
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workloads/data_gen.cc" "src/workloads/CMakeFiles/ssim_workloads.dir/data_gen.cc.o" "gcc" "src/workloads/CMakeFiles/ssim_workloads.dir/data_gen.cc.o.d"
  "/root/repo/src/workloads/wl_cc.cc" "src/workloads/CMakeFiles/ssim_workloads.dir/wl_cc.cc.o" "gcc" "src/workloads/CMakeFiles/ssim_workloads.dir/wl_cc.cc.o.d"
  "/root/repo/src/workloads/wl_chess.cc" "src/workloads/CMakeFiles/ssim_workloads.dir/wl_chess.cc.o" "gcc" "src/workloads/CMakeFiles/ssim_workloads.dir/wl_chess.cc.o.d"
  "/root/repo/src/workloads/wl_compress.cc" "src/workloads/CMakeFiles/ssim_workloads.dir/wl_compress.cc.o" "gcc" "src/workloads/CMakeFiles/ssim_workloads.dir/wl_compress.cc.o.d"
  "/root/repo/src/workloads/wl_oodb.cc" "src/workloads/CMakeFiles/ssim_workloads.dir/wl_oodb.cc.o" "gcc" "src/workloads/CMakeFiles/ssim_workloads.dir/wl_oodb.cc.o.d"
  "/root/repo/src/workloads/wl_parse.cc" "src/workloads/CMakeFiles/ssim_workloads.dir/wl_parse.cc.o" "gcc" "src/workloads/CMakeFiles/ssim_workloads.dir/wl_parse.cc.o.d"
  "/root/repo/src/workloads/wl_perl.cc" "src/workloads/CMakeFiles/ssim_workloads.dir/wl_perl.cc.o" "gcc" "src/workloads/CMakeFiles/ssim_workloads.dir/wl_perl.cc.o.d"
  "/root/repo/src/workloads/wl_place.cc" "src/workloads/CMakeFiles/ssim_workloads.dir/wl_place.cc.o" "gcc" "src/workloads/CMakeFiles/ssim_workloads.dir/wl_place.cc.o.d"
  "/root/repo/src/workloads/wl_raytrace.cc" "src/workloads/CMakeFiles/ssim_workloads.dir/wl_raytrace.cc.o" "gcc" "src/workloads/CMakeFiles/ssim_workloads.dir/wl_raytrace.cc.o.d"
  "/root/repo/src/workloads/wl_route.cc" "src/workloads/CMakeFiles/ssim_workloads.dir/wl_route.cc.o" "gcc" "src/workloads/CMakeFiles/ssim_workloads.dir/wl_route.cc.o.d"
  "/root/repo/src/workloads/wl_zip.cc" "src/workloads/CMakeFiles/ssim_workloads.dir/wl_zip.cc.o" "gcc" "src/workloads/CMakeFiles/ssim_workloads.dir/wl_zip.cc.o.d"
  "/root/repo/src/workloads/workload.cc" "src/workloads/CMakeFiles/ssim_workloads.dir/workload.cc.o" "gcc" "src/workloads/CMakeFiles/ssim_workloads.dir/workload.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/isa/CMakeFiles/ssim_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/ssim_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
