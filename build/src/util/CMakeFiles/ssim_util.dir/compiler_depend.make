# Empty compiler generated dependencies file for ssim_util.
# This may be replaced when dependencies are built.
