file(REMOVE_RECURSE
  "libssim_util.a"
)
