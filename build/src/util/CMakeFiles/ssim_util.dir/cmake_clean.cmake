file(REMOVE_RECURSE
  "CMakeFiles/ssim_util.dir/distribution.cc.o"
  "CMakeFiles/ssim_util.dir/distribution.cc.o.d"
  "CMakeFiles/ssim_util.dir/logging.cc.o"
  "CMakeFiles/ssim_util.dir/logging.cc.o.d"
  "CMakeFiles/ssim_util.dir/random.cc.o"
  "CMakeFiles/ssim_util.dir/random.cc.o.d"
  "CMakeFiles/ssim_util.dir/statistics.cc.o"
  "CMakeFiles/ssim_util.dir/statistics.cc.o.d"
  "CMakeFiles/ssim_util.dir/table.cc.o"
  "CMakeFiles/ssim_util.dir/table.cc.o.d"
  "libssim_util.a"
  "libssim_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ssim_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
