/**
 * @file
 * ssim — command-line front end to the statistical simulation library.
 *
 *   ssim list
 *       List the built-in workloads.
 *   ssim profile <workload> -o <file> [profile options]
 *       Run the statistical profiler and save the profile.
 *   ssim simulate <profile-file> [core options] [generation options]
 *       Generate a synthetic trace from a saved profile and simulate
 *       it on the requested core configuration.
 *   ssim eds <workload> [core options]
 *       Run the execution-driven reference simulation.
 *   ssim compare <workload> [core options]
 *       Run both statistical and execution-driven simulation and
 *       report the prediction errors.
 *
 * Core options:
 *   --ruu N --lsq N --width N --ifq N --scale-bpred L --scale-cache F
 *   --perfect-caches --perfect-bpred
 * Profile options:
 *   --order K --immediate --skip N --max N
 * Generation options:
 *   --reduction R --seed S
 * Workload options:
 *   --workload-scale N
 */

#include <cstdlib>
#include <cstring>
#include <iostream>
#include <string>
#include <vector>

#include "core/report.hh"
#include "core/serialize.hh"
#include "core/statsim.hh"
#include "util/statistics.hh"
#include "util/table.hh"
#include "workloads/workload.hh"

namespace
{

using namespace ssim;

struct Options
{
    std::string command;
    std::string target;          // workload name or profile file
    std::string output;

    // Core configuration.
    cpu::CoreConfig cfg = cpu::CoreConfig::baseline();

    // Profiling.
    core::ProfileOptions profile;

    // Generation.
    core::GenerationOptions generation{20, 1, 1000};

    uint64_t workloadScale = 1;
    bool report = false;
};

[[noreturn]] void
usage()
{
    std::cerr <<
        "usage: ssim <command> [args]\n"
        "  list                      list built-in workloads\n"
        "  profile <workload> -o F   profile and save\n"
        "  simulate <profile-file>   statistical simulation\n"
        "  eds <workload>            execution-driven simulation\n"
        "  compare <workload>        both, with error report\n"
        "core options: --ruu N --lsq N --width N --ifq N\n"
        "              --scale-bpred L --scale-cache F\n"
        "              --perfect-caches --perfect-bpred\n"
        "profile options: --order K --immediate --skip N --max N\n"
        "generation options: --reduction R --seed S\n"
        "workload options: --workload-scale N\n"
        "output options: --report (detailed pipeline/power tables)\n";
    std::exit(2);
}

int64_t
numArg(int argc, char **argv, int &i)
{
    if (i + 1 >= argc)
        usage();
    return std::atoll(argv[++i]);
}

Options
parse(int argc, char **argv)
{
    if (argc < 2)
        usage();
    Options opts;
    opts.command = argv[1];
    int i = 2;
    if (opts.command != "list") {
        if (i >= argc)
            usage();
        opts.target = argv[i++];
    }
    for (; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "-o") {
            if (i + 1 >= argc)
                usage();
            opts.output = argv[++i];
        } else if (arg == "--ruu") {
            opts.cfg.ruuSize = static_cast<uint32_t>(
                numArg(argc, argv, i));
        } else if (arg == "--lsq") {
            opts.cfg.lsqSize = static_cast<uint32_t>(
                numArg(argc, argv, i));
        } else if (arg == "--width") {
            const auto w = static_cast<uint32_t>(
                numArg(argc, argv, i));
            opts.cfg.decodeWidth = w;
            opts.cfg.issueWidth = w;
            opts.cfg.commitWidth = w;
        } else if (arg == "--ifq") {
            opts.cfg.ifqSize = static_cast<uint32_t>(
                numArg(argc, argv, i));
        } else if (arg == "--scale-bpred") {
            opts.cfg.bpred = opts.cfg.bpred.scaled(
                static_cast<int>(numArg(argc, argv, i)));
        } else if (arg == "--scale-cache") {
            const double f = std::atof(argv[++i]);
            opts.cfg.il1 = opts.cfg.il1.scaled(f);
            opts.cfg.dl1 = opts.cfg.dl1.scaled(f);
            opts.cfg.l2 = opts.cfg.l2.scaled(f);
        } else if (arg == "--perfect-caches") {
            opts.cfg.perfectCaches = true;
            opts.profile.perfectCaches = true;
        } else if (arg == "--perfect-bpred") {
            opts.cfg.perfectBpred = true;
            opts.profile.perfectBpred = true;
        } else if (arg == "--order") {
            opts.profile.order = static_cast<int>(
                numArg(argc, argv, i));
        } else if (arg == "--immediate") {
            opts.profile.branchMode =
                core::BranchProfilingMode::ImmediateUpdate;
        } else if (arg == "--skip") {
            opts.profile.skipInsts = static_cast<uint64_t>(
                numArg(argc, argv, i));
        } else if (arg == "--max") {
            opts.profile.maxInsts = static_cast<uint64_t>(
                numArg(argc, argv, i));
        } else if (arg == "--reduction") {
            opts.generation.reductionFactor = static_cast<uint64_t>(
                numArg(argc, argv, i));
        } else if (arg == "--seed") {
            opts.generation.seed = static_cast<uint64_t>(
                numArg(argc, argv, i));
        } else if (arg == "--report") {
            opts.report = true;
        } else if (arg == "--workload-scale") {
            opts.workloadScale = static_cast<uint64_t>(
                numArg(argc, argv, i));
        } else {
            std::cerr << "unknown option: " << arg << "\n";
            usage();
        }
    }
    return opts;
}

void
printResult(const char *label, const core::SimResult &res)
{
    TextTable table;
    table.setHeader({"metric", label});
    table.addRow({"IPC", TextTable::num(res.ipc)});
    table.addRow({"EPC (W)", TextTable::num(res.epc, 2)});
    table.addRow({"EDP", TextTable::num(res.edp, 2)});
    table.addRow({"cycles", std::to_string(res.stats.cycles)});
    table.addRow({"committed", std::to_string(res.stats.committed)});
    table.addRow({"mispredicts/1K",
                  TextTable::num(res.stats.mispredictsPerKilo(), 2)});
    table.print(std::cout);
}

int
cmdList()
{
    TextTable table;
    table.setHeader({"workload", "archetype", "description"});
    for (const auto &info : workloads::suite())
        table.addRow({info.name, info.archetype, info.description});
    table.print(std::cout);
    return 0;
}

int
cmdProfile(const Options &opts)
{
    if (opts.output.empty()) {
        std::cerr << "profile: -o <file> is required\n";
        return 2;
    }
    const isa::Program prog =
        workloads::build(opts.target, opts.workloadScale);
    const core::StatisticalProfile profile =
        core::buildProfile(prog, opts.cfg, opts.profile);
    core::saveProfileFile(profile, opts.output);
    std::cout << "profiled " << profile.instructions
              << " instructions; " << profile.nodeCount()
              << " SFG nodes, " << profile.qualifiedBlockCount()
              << " qualified blocks -> " << opts.output << "\n";
    return 0;
}

int
cmdSimulate(const Options &opts)
{
    const core::StatisticalProfile profile =
        core::loadProfileFile(opts.target);
    const core::SyntheticTrace trace =
        core::generateSyntheticTrace(profile, opts.generation);
    std::cout << "synthetic trace: " << trace.size()
              << " instructions (R="
              << opts.generation.reductionFactor << ")\n";
    const core::SimResult res =
        core::simulateSyntheticTrace(trace, opts.cfg);
    if (opts.report)
        core::printFullReport(std::cout, "statistical", res, opts.cfg);
    else
        printResult("statistical", res);
    return 0;
}

int
cmdEds(const Options &opts)
{
    const isa::Program prog =
        workloads::build(opts.target, opts.workloadScale);
    const core::SimResult res =
        core::runExecutionDriven(prog, opts.cfg);
    if (opts.report)
        core::printFullReport(std::cout, "execution-driven", res,
                              opts.cfg);
    else
        printResult("execution-driven", res);
    return 0;
}

int
cmdCompare(const Options &opts)
{
    const isa::Program prog =
        workloads::build(opts.target, opts.workloadScale);
    core::StatSimOptions ssOpts;
    ssOpts.profile = opts.profile;
    ssOpts.generation = opts.generation;
    const core::SimResult ss =
        core::runStatisticalSimulation(prog, opts.cfg, ssOpts);
    const core::SimResult eds =
        core::runExecutionDriven(prog, opts.cfg);

    TextTable table;
    table.setHeader({"metric", "statistical", "execution-driven",
                     "abs error"});
    table.addRow({"IPC", TextTable::num(ss.ipc),
                  TextTable::num(eds.ipc),
                  TextTable::pct(absoluteError(ss.ipc, eds.ipc))});
    table.addRow({"EPC (W)", TextTable::num(ss.epc, 2),
                  TextTable::num(eds.epc, 2),
                  TextTable::pct(absoluteError(ss.epc, eds.epc))});
    table.addRow({"EDP", TextTable::num(ss.edp, 2),
                  TextTable::num(eds.edp, 2),
                  TextTable::pct(absoluteError(ss.edp, eds.edp))});
    table.print(std::cout);
    if (opts.report)
        core::printComparison(std::cout, ss, eds);
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    const Options opts = parse(argc, argv);
    if (opts.command == "list")
        return cmdList();
    if (opts.command == "profile")
        return cmdProfile(opts);
    if (opts.command == "simulate")
        return cmdSimulate(opts);
    if (opts.command == "eds")
        return cmdEds(opts);
    if (opts.command == "compare")
        return cmdCompare(opts);
    usage();
}
