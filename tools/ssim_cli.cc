/**
 * @file
 * ssim — command-line front end to the statistical simulation library.
 *
 *   ssim list
 *       List the built-in workloads.
 *   ssim profile <workload> -o <file> [profile options]
 *       Run the statistical profiler and save the profile.
 *   ssim simulate <profile-file> [core options] [generation options]
 *       Generate a synthetic trace from a saved profile and simulate
 *       it on the requested core configuration.
 *   ssim eds <workload> [core options]
 *       Run the execution-driven reference simulation.
 *   ssim compare <workload> [core options]
 *       Run both statistical and execution-driven simulation and
 *       report the prediction errors.
 *   ssim sweep <workload> --grid key=v1,v2,... [sweep options]
 *       Run a design-space grid through the crash-tolerant parallel
 *       sweep engine (journaled, resumable, watchdog-timed).
 *   ssim serve [serve options]
 *       Run the long-lived prediction daemon: newline-delimited JSON
 *       requests on stdin/stdout (or --socket PATH), answered by a
 *       worker pool with bounded admission, per-request deadlines,
 *       crash isolation, and graceful SIGINT/SIGTERM drain.
 *
 * Core options:
 *   --ruu N --lsq N --width N --ifq N --scale-bpred L --scale-cache F
 *   --perfect-caches --perfect-bpred
 * Profile options:
 *   --order K --immediate --skip N --max N
 * Generation options:
 *   --reduction R --seed S
 * Workload options:
 *   --workload-scale N
 * Observability options (simulate/eds/sweep):
 *   --stats-json FILE   machine-readable stats export (on sweep: a
 *                       live heartbeat, atomically rewritten as
 *                       points settle)
 *   --trace FILE        Chrome trace_event timeline (chrome://tracing
 *                       or https://ui.perfetto.dev)
 *   --quiet             suppress warn/info chatter (only errors);
 *                       equivalent to SSIM_LOG_LEVEL=error
 */

#include <algorithm>
#include <cerrno>
#include <charconv>
#include <cmath>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "core/report.hh"
#include "core/serialize.hh"
#include "core/statsim.hh"
#include "core/sts_frontend.hh"
#include "experiments/harness.hh"
#include "fault/chaos.hh"
#include "fault/fault.hh"
#include "experiments/sweep.hh"
#include "obs/export_json.hh"
#include "obs/export_trace.hh"
#include "obs/manifest.hh"
#include "obs/metrics.hh"
#include "serve/predict.hh"
#include "serve/server.hh"
#include "serve/transport.hh"
#include "util/error.hh"
#include "util/logging.hh"
#include "util/statistics.hh"
#include "util/table.hh"
#include "workloads/workload.hh"

namespace
{

using namespace ssim;

struct Options
{
    std::string command;
    std::string target;          // workload name or profile file
    std::string output;

    // Core configuration.
    cpu::CoreConfig cfg = cpu::CoreConfig::baseline();

    // Profiling.
    core::ProfileOptions profile;

    // Generation.
    core::GenerationOptions generation{20, 1, 1000};

    uint64_t workloadScale = 1;
    bool report = false;

    // Sweep.
    std::vector<experiments::GridAxis> grids;
    unsigned jobs = 1;
    std::string journal;
    bool resume = false;
    double pointTimeout = 0.0;
    unsigned retries = 1;

    // Serve.
    size_t queueCapacity = 64;       ///< --queue N
    double deadlineMs = 0.0;         ///< --deadline-ms N (default)
    double drainMs = 5000.0;         ///< --drain-ms N
    double restartBackoffMs = 50.0;  ///< --restart-backoff-ms N
    std::string socketPath;          ///< --socket PATH

    // Fault injection (sweep / serve / chaos).
    std::string faultPlan;   ///< --fault-plan SPEC (inline or path)

    // Chaos.
    uint64_t chaosSchedules = 100;  ///< --schedules N
    std::string chaosMode = "all";  ///< --mode all|sweep|serve
    uint64_t chaosPoints = 6;       ///< --points N
    uint64_t chaosRequests = 24;    ///< --requests N
    uint64_t chaosReplay = 3;       ///< --replay-verify N
    std::string chaosDir = ".";     ///< --dir PATH
    bool chaosVerbose = false;      ///< --verbose

    // Observability.
    std::string statsJson;   ///< --stats-json FILE
    std::string tracePath;   ///< --trace FILE
    bool quiet = false;      ///< --quiet
};

/**
 * The journal path of the sweep in progress, so the top-level error
 * report can tell the user where their completed work lives.
 */
std::string activeJournalPath;

[[noreturn]] void
usage()
{
    std::cerr <<
        "usage: ssim <command> [args]\n"
        "  list                      list built-in workloads\n"
        "  profile <workload> -o F   profile and save\n"
        "  simulate <profile-file>   statistical simulation\n"
        "  eds <workload>            execution-driven simulation\n"
        "  compare <workload>        both, with error report\n"
        "  sweep <workload>          journaled parallel design sweep\n"
        "  serve                     long-lived prediction daemon\n"
        "  chaos                     seeded fault-injection invariant\n"
        "                            harness over sweep + serve\n"
        "core options: --ruu N --lsq N --width N --ifq N\n"
        "              --scale-bpred L --scale-cache F\n"
        "              --perfect-caches --perfect-bpred\n"
        "profile options: --order K --immediate --skip N --max N\n"
        "generation options: --reduction R --seed S\n"
        "workload options: --workload-scale N\n"
        "output options: --report (detailed pipeline/power tables)\n"
        "sweep options: --grid key=v1,v2,... (repeatable; keys: ruu,\n"
        "  lsq, width, ifq, scale-bpred, scale-cache), --jobs N\n"
        "  (0 = all cores), --journal FILE, --resume,\n"
        "  --point-timeout SEC, --retries N\n"
        "serve options: --jobs N (workers; 0 = all cores),\n"
        "  --queue N (admission capacity), --deadline-ms N (default\n"
        "  per-request deadline; 0 = none), --drain-ms N,\n"
        "  --restart-backoff-ms N, --socket PATH (Unix socket\n"
        "  instead of stdin/stdout), --stats-json FILE (final\n"
        "  serve.* snapshot on exit)\n"
        "chaos options: --schedules N (default 100), --seed S,\n"
        "  --mode all|sweep|serve, --points N (sweep size),\n"
        "  --requests N (serve load), --replay-verify N,\n"
        "  --dir PATH (scratch journals), --verbose\n"
        "fault injection: --fault-plan SPEC (inline JSON or a path;\n"
        "  sweep/serve: arm the plan for the run, chaos: use it for\n"
        "  every schedule instead of generated plans); also the\n"
        "  SSIM_FAULT_PLAN env var, and the legacy SSIM_FSYNC_FAIL,\n"
        "  SSIM_SERVE_CRASH_ON, SSIM_SWEEP_CRASH_AFTER,\n"
        "  SSIM_SWEEP_STALL_POINT hooks\n"
        "observability options: --stats-json FILE (sweep: live\n"
        "  heartbeat), --trace FILE (Perfetto/chrome://tracing),\n"
        "  --quiet (errors only; also SSIM_LOG_LEVEL=error|warn|info)\n"
        "exit codes: 0 ok, 2 usage/argument error, 3 invalid\n"
        "  configuration, 4 profile parse error, 5 corrupted\n"
        "  profile, 6 profile version mismatch, 7 I/O error,\n"
        "  8 unknown workload, 9 internal error, 10 sweep\n"
        "  interrupted / serve drained by signal (resumable),\n"
        "  11 overloaded, 12 deadline exceeded, 13 worker\n"
        "  crashed, 14 shutting down (11-14 are also the serve\n"
        "  wire-protocol error categories)\n";
    std::exit(2);
}

/** Reject with a clear message; exits with the usage-error code. */
[[noreturn]] void
argError(const std::string &msg)
{
    throw Error(ErrorCategory::InvalidArgument,
                msg + " (run 'ssim' without arguments for usage)");
}

const char *
valueOf(int argc, char **argv, int &i)
{
    if (i + 1 >= argc)
        argError(std::string("option ") + argv[i] +
                 " requires a value");
    return argv[++i];
}

uint64_t
uintArg(int argc, char **argv, int &i)
{
    const std::string flag = argv[i];
    const std::string tok = valueOf(argc, argv, i);
    uint64_t v = 0;
    const auto [p, ec] =
        std::from_chars(tok.data(), tok.data() + tok.size(), v, 10);
    if (tok.empty() || ec != std::errc() ||
        p != tok.data() + tok.size()) {
        argError("option " + flag +
                 ": expected an unsigned integer, got '" + tok + "'");
    }
    return v;
}

int64_t
intArg(int argc, char **argv, int &i)
{
    const std::string flag = argv[i];
    const std::string tok = valueOf(argc, argv, i);
    int64_t v = 0;
    const auto [p, ec] =
        std::from_chars(tok.data(), tok.data() + tok.size(), v, 10);
    if (tok.empty() || ec != std::errc() ||
        p != tok.data() + tok.size()) {
        argError("option " + flag + ": expected an integer, got '" +
                 tok + "'");
    }
    return v;
}

double
floatArg(int argc, char **argv, int &i)
{
    const std::string flag = argv[i];
    const std::string tok = valueOf(argc, argv, i);
    errno = 0;
    char *end = nullptr;
    const double v = std::strtod(tok.c_str(), &end);
    if (tok.empty() || end != tok.c_str() + tok.size() ||
        errno == ERANGE || !std::isfinite(v) || v <= 0.0) {
        argError("option " + flag +
                 ": expected a positive finite number, got '" + tok +
                 "'");
    }
    return v;
}

/**
 * Parse "--grid key=v1,v2,...". Values are syntax-checked here; the
 * key itself is validated by the sweep grid layer, which names any
 * unknown key and the valid alternatives.
 */
experiments::GridAxis
gridArg(int argc, char **argv, int &i)
{
    const std::string spec = valueOf(argc, argv, i);
    const size_t eq = spec.find('=');
    if (eq == std::string::npos || eq == 0 || eq + 1 >= spec.size())
        argError("option --grid expects key=v1,v2,..., got '" + spec +
                 "'");
    experiments::GridAxis axis;
    axis.key = spec.substr(0, eq);
    size_t pos = eq + 1;
    while (pos <= spec.size()) {
        size_t comma = spec.find(',', pos);
        if (comma == std::string::npos)
            comma = spec.size();
        const std::string tok = spec.substr(pos, comma - pos);
        errno = 0;
        char *end = nullptr;
        const double v = std::strtod(tok.c_str(), &end);
        if (tok.empty() || end != tok.c_str() + tok.size() ||
            errno == ERANGE || !std::isfinite(v)) {
            argError("option --grid " + axis.key +
                     ": expected a number, got '" + tok + "'");
        }
        axis.values.push_back(v);
        pos = comma + 1;
    }
    return axis;
}

Options
parse(int argc, char **argv)
{
    if (argc < 2)
        usage();
    Options opts;
    opts.command = argv[1];
    int i = 2;
    // `list`, `serve`, and `chaos` take no target; everything else
    // names a workload or profile file.
    if (opts.command != "list" && opts.command != "serve" &&
        opts.command != "chaos") {
        if (i >= argc) {
            argError("command '" + opts.command +
                     "' requires a target (workload name or profile "
                     "file)");
        }
        opts.target = argv[i++];
    }
    for (; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "-o") {
            opts.output = valueOf(argc, argv, i);
        } else if (arg == "--ruu") {
            opts.cfg.ruuSize = static_cast<uint32_t>(
                uintArg(argc, argv, i));
        } else if (arg == "--lsq") {
            opts.cfg.lsqSize = static_cast<uint32_t>(
                uintArg(argc, argv, i));
        } else if (arg == "--width") {
            const auto w = static_cast<uint32_t>(
                uintArg(argc, argv, i));
            opts.cfg.decodeWidth = w;
            opts.cfg.issueWidth = w;
            opts.cfg.commitWidth = w;
        } else if (arg == "--ifq") {
            opts.cfg.ifqSize = static_cast<uint32_t>(
                uintArg(argc, argv, i));
        } else if (arg == "--scale-bpred") {
            opts.cfg.bpred = opts.cfg.bpred.scaled(
                static_cast<int>(intArg(argc, argv, i)));
        } else if (arg == "--scale-cache") {
            const double f = floatArg(argc, argv, i);
            opts.cfg.il1 = opts.cfg.il1.scaled(f);
            opts.cfg.dl1 = opts.cfg.dl1.scaled(f);
            opts.cfg.l2 = opts.cfg.l2.scaled(f);
        } else if (arg == "--perfect-caches") {
            opts.cfg.perfectCaches = true;
            opts.profile.perfectCaches = true;
        } else if (arg == "--perfect-bpred") {
            opts.cfg.perfectBpred = true;
            opts.profile.perfectBpred = true;
        } else if (arg == "--order") {
            opts.profile.order = static_cast<int>(
                intArg(argc, argv, i));
        } else if (arg == "--immediate") {
            opts.profile.branchMode =
                core::BranchProfilingMode::ImmediateUpdate;
        } else if (arg == "--skip") {
            opts.profile.skipInsts = uintArg(argc, argv, i);
        } else if (arg == "--max") {
            opts.profile.maxInsts = uintArg(argc, argv, i);
        } else if (arg == "--reduction") {
            opts.generation.reductionFactor =
                uintArg(argc, argv, i);
        } else if (arg == "--seed") {
            opts.generation.seed = uintArg(argc, argv, i);
        } else if (arg == "--report") {
            opts.report = true;
        } else if (arg == "--workload-scale") {
            opts.workloadScale = uintArg(argc, argv, i);
        } else if (arg == "--grid") {
            opts.grids.push_back(gridArg(argc, argv, i));
        } else if (arg == "--jobs") {
            opts.jobs = static_cast<unsigned>(uintArg(argc, argv, i));
        } else if (arg == "--journal") {
            opts.journal = valueOf(argc, argv, i);
        } else if (arg == "--resume") {
            opts.resume = true;
        } else if (arg == "--point-timeout") {
            opts.pointTimeout = floatArg(argc, argv, i);
        } else if (arg == "--retries") {
            opts.retries = static_cast<unsigned>(
                uintArg(argc, argv, i));
        } else if (arg == "--queue") {
            opts.queueCapacity = uintArg(argc, argv, i);
        } else if (arg == "--deadline-ms") {
            // 0 is meaningful here ("no default deadline"), so this
            // flag takes the non-negative integer path.
            opts.deadlineMs =
                static_cast<double>(uintArg(argc, argv, i));
        } else if (arg == "--drain-ms") {
            opts.drainMs = floatArg(argc, argv, i);
        } else if (arg == "--restart-backoff-ms") {
            opts.restartBackoffMs = floatArg(argc, argv, i);
        } else if (arg == "--socket") {
            opts.socketPath = valueOf(argc, argv, i);
        } else if (arg == "--fault-plan") {
            opts.faultPlan = valueOf(argc, argv, i);
        } else if (arg == "--schedules") {
            opts.chaosSchedules = uintArg(argc, argv, i);
        } else if (arg == "--mode") {
            opts.chaosMode = valueOf(argc, argv, i);
        } else if (arg == "--points") {
            opts.chaosPoints = uintArg(argc, argv, i);
        } else if (arg == "--requests") {
            opts.chaosRequests = uintArg(argc, argv, i);
        } else if (arg == "--replay-verify") {
            // 0 is meaningful ("skip replay verification").
            opts.chaosReplay = uintArg(argc, argv, i);
        } else if (arg == "--dir") {
            opts.chaosDir = valueOf(argc, argv, i);
        } else if (arg == "--verbose") {
            opts.chaosVerbose = true;
        } else if (arg == "--stats-json") {
            opts.statsJson = valueOf(argc, argv, i);
        } else if (arg == "--trace") {
            opts.tracePath = valueOf(argc, argv, i);
        } else if (arg == "--quiet") {
            opts.quiet = true;
        } else {
            argError("unknown option '" + arg + "'");
        }
    }
    return opts;
}

/**
 * Observability plumbing for one run command: the registry and trace
 * buffer, the ObsSink view the simulation publishes through, and the
 * manifest stamped into whatever gets written. Only the outputs the
 * user asked for are enabled, so a plain run pays nothing.
 */
struct ObsOutputs
{
    obs::Registry registry;
    obs::TraceLog trace;
    core::ObsSink sink;
    obs::RunManifest manifest;
    bool enabled = false;

    ObsOutputs(const Options &opts, uint64_t profileChecksum,
               bool hasProfileChecksum)
    {
        manifest = obs::makeManifest(opts.command);
        manifest.workload = opts.target;
        manifest.configHash = experiments::configHash(opts.cfg);
        manifest.seed = opts.generation.seed;
        manifest.profileChecksum = profileChecksum;
        manifest.hasProfileChecksum = hasProfileChecksum;
        if (!opts.statsJson.empty())
            sink.registry = &registry;
        if (!opts.tracePath.empty())
            sink.trace = &trace;
        enabled = sink.registry || sink.trace;
    }

    /** The sink pointer to pass into the simulation (null = off). */
    const core::ObsSink *sinkPtr() const
    {
        return enabled ? &sink : nullptr;
    }

    /** Write the requested export files; throws on I/O failure. */
    void writeFiles(const Options &opts) const
    {
        if (!opts.statsJson.empty()) {
            const Expected<void> r = obs::writeStatsJson(
                opts.statsJson, registry.snapshot(), manifest);
            if (!r)
                throw r.error();
        }
        if (!opts.tracePath.empty()) {
            const Expected<void> r =
                trace.write(opts.tracePath, manifest);
            if (!r)
                throw r.error();
        }
    }
};

/**
 * The payload checksum declared in a profile file's header — the
 * provenance value for the manifest. Called only after
 * loadProfileFile() has validated the file, so the header is known to
 * be well-formed ("ssim-profile <ver> <fnv1a64-hex> <bytes>").
 */
uint64_t
onDiskProfileChecksum(const std::string &path)
{
    std::ifstream is(path);
    std::string magic, version, sum;
    if (!(is >> magic >> version >> sum))
        return 0;
    return std::strtoull(sum.c_str(), nullptr, 16);
}

void
printResult(const char *label, const core::SimResult &res)
{
    TextTable table;
    table.setHeader({"metric", label});
    table.addRow({"IPC", TextTable::num(res.ipc)});
    table.addRow({"EPC (W)", TextTable::num(res.epc, 2)});
    table.addRow({"EDP", TextTable::num(res.edp, 2)});
    table.addRow({"cycles", std::to_string(res.stats.cycles)});
    table.addRow({"committed", std::to_string(res.stats.committed)});
    table.addRow({"mispredicts/1K",
                  TextTable::num(res.stats.mispredictsPerKilo(), 2)});
    table.print(std::cout);
}

int
cmdList()
{
    TextTable table;
    table.setHeader({"workload", "archetype", "description"});
    for (const auto &info : workloads::suite())
        table.addRow({info.name, info.archetype, info.description});
    table.print(std::cout);
    return 0;
}

int
cmdProfile(const Options &opts)
{
    if (opts.output.empty()) {
        std::cerr << "profile: -o <file> is required\n";
        return 2;
    }
    const isa::Program prog =
        workloads::build(opts.target, opts.workloadScale);
    const core::StatisticalProfile profile =
        core::buildProfile(prog, opts.cfg, opts.profile);
    core::saveProfileFile(profile, opts.output);
    std::cout << "profiled " << profile.instructions
              << " instructions; " << profile.nodeCount()
              << " SFG nodes, " << profile.qualifiedBlockCount()
              << " qualified blocks -> " << opts.output << "\n";
    return 0;
}

int
cmdSimulate(const Options &opts)
{
    // Validate the configuration before loading or generating
    // anything: a bad knob should not cost a generation pass.
    opts.cfg.validate();
    opts.generation.validate();
    const core::StatisticalProfile profile =
        core::loadProfileFile(opts.target);
    // Streamed: instructions are generated into a bounded ring and
    // consumed by the core directly, never materialized as a vector.
    core::StreamingGenerator gen(
        profile, opts.generation,
        core::requiredStreamLookback(opts.cfg));
    ObsOutputs out(opts, onDiskProfileChecksum(opts.target), true);
    const core::SimResult res =
        core::simulateSyntheticStream(gen, opts.cfg, out.sinkPtr());
    std::cout << "synthetic trace: " << gen.generated()
              << " instructions (R="
              << opts.generation.reductionFactor << ", streamed)\n";
    if (opts.report)
        core::printFullReport(std::cout, "statistical", res, opts.cfg);
    else
        printResult("statistical", res);
    out.writeFiles(opts);
    return 0;
}

int
cmdEds(const Options &opts)
{
    const isa::Program prog =
        workloads::build(opts.target, opts.workloadScale);
    ObsOutputs out(opts, 0, false);
    const core::SimResult res =
        core::runExecutionDriven(prog, opts.cfg, {}, out.sinkPtr());
    if (opts.report)
        core::printFullReport(std::cout, "execution-driven", res,
                              opts.cfg);
    else
        printResult("execution-driven", res);
    out.writeFiles(opts);
    return 0;
}

int
cmdCompare(const Options &opts)
{
    const isa::Program prog =
        workloads::build(opts.target, opts.workloadScale);
    core::StatSimOptions ssOpts;
    ssOpts.profile = opts.profile;
    ssOpts.generation = opts.generation;
    const core::SimResult ss =
        core::runStatisticalSimulation(prog, opts.cfg, ssOpts);
    const core::SimResult eds =
        core::runExecutionDriven(prog, opts.cfg);

    TextTable table;
    table.setHeader({"metric", "statistical", "execution-driven",
                     "abs error"});
    table.addRow({"IPC", TextTable::num(ss.ipc),
                  TextTable::num(eds.ipc),
                  TextTable::pct(absoluteError(ss.ipc, eds.ipc))});
    table.addRow({"EPC (W)", TextTable::num(ss.epc, 2),
                  TextTable::num(eds.epc, 2),
                  TextTable::pct(absoluteError(ss.epc, eds.epc))});
    table.addRow({"EDP", TextTable::num(ss.edp, 2),
                  TextTable::num(eds.edp, 2),
                  TextTable::pct(absoluteError(ss.edp, eds.edp))});
    table.print(std::cout);
    if (opts.report)
        core::printComparison(std::cout, ss, eds);
    return 0;
}

int
cmdSweep(const Options &opts)
{
    namespace exp = ssim::experiments;
    if (opts.grids.empty()) {
        argError("sweep requires at least one --grid axis "
                 "(e.g. --grid ruu=16,32,64)");
    }
    // Fail fast on bad knobs before any profiling work: the base
    // configuration, every grid key/value, and the sweep options go
    // through the typed validation layer. A *point* whose combined
    // configuration is invalid is not fatal — it is recorded in the
    // journal as a typed error and the sweep continues.
    opts.cfg.validate();
    opts.generation.validate();
    const std::vector<exp::ConfigPoint> grid =
        exp::expandConfigGrid(opts.cfg, opts.grids);

    exp::SweepOptions sopts;
    sopts.jobs = opts.jobs;
    sopts.seed = opts.generation.seed;
    sopts.pointTimeoutSeconds = opts.pointTimeout;
    sopts.maxRetries = opts.retries;
    sopts.journalPath = opts.journal;
    sopts.resume = opts.resume;
    sopts.handleSignals = true;

    // Observability: --trace records per-worker point timelines;
    // --stats-json is the live heartbeat the engine rewrites as
    // points settle (its final rewrite is the end-of-sweep state).
    obs::RunManifest manifest = obs::makeManifest("sweep");
    manifest.workload = opts.target;
    manifest.configHash = exp::configHash(opts.cfg);
    manifest.seed = opts.generation.seed;
    obs::TraceLog traceLog;
    if (!opts.tracePath.empty())
        sopts.trace = &traceLog;
    sopts.heartbeatPath = opts.statsJson;
    sopts.manifest = &manifest;
    sopts.validate();
    activeJournalPath = opts.journal;

    exp::Benchmark bench{opts.target, "",
                         workloads::build(opts.target,
                                          opts.workloadScale)};
    exp::StatSimKnobs baseKnobs;
    baseKnobs.order = opts.profile.order;
    baseKnobs.branchMode = opts.profile.branchMode;
    baseKnobs.reductionFactor = opts.generation.reductionFactor;
    baseKnobs.perfectCaches = opts.profile.perfectCaches;
    baseKnobs.perfectBpred = opts.profile.perfectBpred;
    baseKnobs.skipInsts = opts.profile.skipInsts;
    baseKnobs.maxInsts =
        opts.profile.maxInsts == ~0ull ? 0 : opts.profile.maxInsts;

    std::vector<exp::SweepPoint> points;
    points.reserve(grid.size());
    for (const exp::ConfigPoint &point : grid)
        points.push_back({point.name,
                          exp::configHash(point.cfg)});

    const exp::SweepSummary summary = exp::runSweep(
        points,
        [&](size_t index, uint64_t seed) {
            exp::StatSimKnobs knobs = baseKnobs;
            knobs.seed = seed;
            // Per-point gen+sim wall time and peak RSS land in the
            // journal's `wall_s` / `peak_rss_kb` attempt fields, not
            // here: `metrics` values must be bit-reproducible across
            // crash+resume.
            const core::SimResult res =
                exp::runStatSim(bench, grid[index].cfg, knobs);
            return exp::PointMetrics{
                {"ipc", res.ipc},
                {"epc", res.epc},
                {"edp", res.edp},
                {"cycles", static_cast<double>(res.stats.cycles)},
            };
        },
        sopts);

    TextTable table;
    table.setHeader({"point", "status", "attempts", "IPC", "EPC (W)",
                     "EDP"});
    for (size_t p = 0; p < grid.size(); ++p) {
        const exp::PointOutcome &o = summary.outcomes[p];
        std::string ipc = "-", epc = "-", edp = "-";
        std::string status = exp::pointStatusName(o.status);
        if (o.status == exp::PointStatus::Ok) {
            for (const auto &[name, value] : o.metrics) {
                if (name == "ipc")
                    ipc = TextTable::num(value);
                else if (name == "epc")
                    epc = TextTable::num(value, 2);
                else if (name == "edp")
                    edp = TextTable::num(value, 2);
            }
            if (o.reused)
                status += " (journal)";
        } else if (o.status == exp::PointStatus::Error) {
            status += " [" + std::string(errorCategoryName(
                                 o.errorCategory)) + "]";
        }
        table.addRow({grid[p].name, status,
                      std::to_string(o.attempts), ipc, epc, edp});
    }
    table.print(std::cout);

    if (!opts.tracePath.empty()) {
        const Expected<void> w =
            traceLog.write(opts.tracePath, manifest);
        if (!w)
            throw w.error();
        std::cout << "trace: " << opts.tracePath << " ("
                  << traceLog.size() << " events)\n";
    }

    std::cout << "sweep: " << summary.okCount << " ok, "
              << summary.errorCount << " error, "
              << summary.timeoutCount << " timeout, "
              << summary.crashedCount << " crashed, "
              << summary.pendingCount << " pending; re-ran "
              << summary.executedCount << " points, reused "
              << summary.reusedCount << " from journal\n";
    if (!opts.journal.empty())
        std::cout << "journal: " << opts.journal << "\n";
    for (size_t p = 0; p < grid.size(); ++p) {
        const exp::PointOutcome &o = summary.outcomes[p];
        if (o.status == exp::PointStatus::Error ||
            o.status == exp::PointStatus::Timeout ||
            o.status == exp::PointStatus::Crashed) {
            std::cerr << "sweep: point '" << grid[p].name << "' "
                      << exp::pointStatusName(o.status);
            if (o.status == exp::PointStatus::Error)
                std::cerr << " ["
                          << errorCategoryName(o.errorCategory)
                          << "]";
            if (!o.message.empty())
                std::cerr << ": " << o.message;
            std::cerr << "\n";
        }
    }
    if (summary.interrupted) {
        std::cerr << "sweep: interrupted; rerun with --resume"
                  << (opts.journal.empty()
                          ? " (no journal was kept, so a rerun "
                            "starts over)"
                          : " --journal " + opts.journal)
                  << " to finish the remaining points\n";
        return exp::SweepInterruptedExitCode;
    }
    return 0;
}

int
cmdServe(const Options &opts)
{
    serve::ServeOptions sopts;
    sopts.workers = opts.jobs;
    sopts.queueCapacity = opts.queueCapacity;
    sopts.defaultDeadlineSeconds = opts.deadlineMs / 1000.0;
    sopts.drainBudgetSeconds = opts.drainMs / 1000.0;
    sopts.restartBackoffSeconds = opts.restartBackoffMs / 1000.0;
    sopts.restartBackoffCapSeconds =
        std::max(sopts.restartBackoffSeconds, 2.0);
    sopts.validate();

    obs::RunManifest manifest = obs::makeManifest("serve");
    manifest.seed = opts.generation.seed;

    serve::Server server(serve::makeStatSimPredictFn(), sopts,
                         &manifest);
    server.start();
    serve::TransportOptions topts;
    topts.handleSignals = true;
    const int rc =
        opts.socketPath.empty()
            ? serve::runStdioTransport(server, topts)
            : serve::runUnixSocketTransport(server, opts.socketPath,
                                            topts);
    // The final snapshot is the daemon's parting account of itself:
    // everything served, shed, timed out, crashed, and restarted.
    if (!opts.statsJson.empty()) {
        const Expected<void> w = obs::writeStatsJson(
            opts.statsJson, server.metricsSnapshot(), manifest);
        if (!w)
            throw w.error();
    }
    return rc;
}

int
cmdChaos(const Options &opts)
{
    fault::ChaosOptions copts;
    copts.seed = opts.generation.seed;
    copts.schedules = opts.chaosSchedules;
    if (opts.chaosMode == "all")
        copts.mode = fault::ChaosMode::All;
    else if (opts.chaosMode == "sweep")
        copts.mode = fault::ChaosMode::Sweep;
    else if (opts.chaosMode == "serve")
        copts.mode = fault::ChaosMode::Serve;
    else
        argError("option --mode expects all|sweep|serve, got '" +
                 opts.chaosMode + "'");
    copts.points = opts.chaosPoints;
    copts.requests = opts.chaosRequests;
    copts.replayVerify = opts.chaosReplay;
    copts.scratchDir = opts.chaosDir;
    copts.fixedPlanSpec = opts.faultPlan;
    copts.verbose = opts.chaosVerbose;

    const fault::ChaosReport report = fault::runChaos(copts);
    std::cout << "chaos: " << report.schedulesRun << " schedules ("
              << report.sweepSchedules << " sweep, "
              << report.serveSchedules << " serve), "
              << report.childCrashes << " injected crashes, "
              << report.serveFaultsFired << " serve faults fired, "
              << report.replaysVerified << " replays verified\n";
    if (!report.violations.empty()) {
        for (const std::string &v : report.violations)
            std::cerr << "chaos: VIOLATION: " << v << "\n";
        throw Error(ErrorCategory::Internal,
                    std::to_string(report.violations.size()) +
                        " chaos invariant violation(s); see above");
    }
    std::cout << "chaos: all invariants held\n";
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    // Terminating the process is CLI policy: the library reports
    // failures as typed ssim::Error, and this is the single place
    // they become exit codes (one per category; see usage()).
    try {
        const Options opts = parse(argc, argv);
        if (opts.quiet)
            setLogLevel(LogLevel::Error);
        // Arm fault injection for this run. `chaos` owns the
        // registry itself (its schedules install their own plans), so
        // its --fault-plan travels via ChaosOptions instead.
        if (opts.command != "chaos") {
            if (!opts.faultPlan.empty()) {
                Expected<fault::FaultPlan> plan =
                    fault::FaultPlan::loadSpec(opts.faultPlan);
                if (!plan)
                    throw plan.error();
                fault::installPlan(std::make_shared<fault::FaultPlan>(
                    std::move(plan.value())));
            } else {
                fault::installPlanFromEnv();
            }
        }
        if (opts.command == "list")
            return cmdList();
        if (opts.command == "profile")
            return cmdProfile(opts);
        if (opts.command == "simulate")
            return cmdSimulate(opts);
        if (opts.command == "eds")
            return cmdEds(opts);
        if (opts.command == "compare")
            return cmdCompare(opts);
        if (opts.command == "sweep")
            return cmdSweep(opts);
        if (opts.command == "serve")
            return cmdServe(opts);
        if (opts.command == "chaos")
            return cmdChaos(opts);
        std::cerr << "ssim: unknown command '" << opts.command
                  << "'\n";
        usage();
    } catch (const ssim::Error &e) {
        std::cerr << "ssim: " << e.what() << "\n";
        std::cerr << "ssim: error category: "
                  << ssim::errorCategoryName(e.category())
                  << " (exit " << ssim::exitCodeFor(e.category())
                  << ")\n";
        if (!activeJournalPath.empty())
            std::cerr << "ssim: journal: " << activeJournalPath
                      << "\n";
        return ssim::exitCodeFor(e.category());
    } catch (const std::exception &e) {
        std::cerr << "ssim: internal error: " << e.what() << "\n";
        if (!activeJournalPath.empty())
            std::cerr << "ssim: journal: " << activeJournalPath
                      << "\n";
        return ssim::exitCodeFor(ssim::ErrorCategory::Internal);
    }
}
