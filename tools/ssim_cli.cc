/**
 * @file
 * ssim — command-line front end to the statistical simulation library.
 *
 *   ssim list
 *       List the built-in workloads.
 *   ssim profile <workload> -o <file> [profile options]
 *       Run the statistical profiler and save the profile.
 *   ssim simulate <profile-file> [core options] [generation options]
 *       Generate a synthetic trace from a saved profile and simulate
 *       it on the requested core configuration.
 *   ssim eds <workload> [core options]
 *       Run the execution-driven reference simulation.
 *   ssim compare <workload> [core options]
 *       Run both statistical and execution-driven simulation and
 *       report the prediction errors.
 *   ssim sweep <workload> --grid key=v1,v2,... [sweep options]
 *       Run a design-space grid through the crash-tolerant parallel
 *       sweep engine (journaled, resumable, watchdog-timed).
 *   ssim serve [serve options]
 *       Run the long-lived prediction daemon: newline-delimited JSON
 *       requests on stdin/stdout (or --socket PATH), answered by a
 *       worker pool with bounded admission, per-request deadlines,
 *       crash isolation, and graceful SIGINT/SIGTERM drain.
 *
 * Core options:
 *   --ruu N --lsq N --width N --ifq N --scale-bpred L --scale-cache F
 *   --perfect-caches --perfect-bpred
 * Profile options:
 *   --order K --immediate --skip N --max N
 * Generation options:
 *   --reduction R --seed S
 * Workload options:
 *   --workload-scale N
 * Observability options (simulate/eds/sweep):
 *   --stats-json FILE   machine-readable stats export (on sweep: a
 *                       live heartbeat, atomically rewritten as
 *                       points settle)
 *   --trace FILE        Chrome trace_event timeline (chrome://tracing
 *                       or https://ui.perfetto.dev)
 *   --quiet             suppress warn/info chatter (only errors);
 *                       equivalent to SSIM_LOG_LEVEL=error
 */

#include <algorithm>
#include <cerrno>
#include <charconv>
#include <cmath>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <set>
#include <string>
#include <vector>

#include "core/ensemble.hh"
#include "core/gen_model.hh"
#include "core/report.hh"
#include "core/serialize.hh"
#include "core/statsim.hh"
#include "core/sts_frontend.hh"
#include "experiments/harness.hh"
#include "fault/chaos.hh"
#include "fault/fault.hh"
#include "experiments/sweep.hh"
#include "obs/export_json.hh"
#include "obs/export_trace.hh"
#include "obs/manifest.hh"
#include "obs/metrics.hh"
#include "proxy/features.hh"
#include "proxy/model.hh"
#include "proxy/model_io.hh"
#include "proxy/pareto.hh"
#include "serve/predict.hh"
#include "serve/server.hh"
#include "serve/transport.hh"
#include "util/error.hh"
#include "util/json_writer.hh"
#include "util/logging.hh"
#include "util/statistics.hh"
#include "util/table.hh"
#include "workloads/workload.hh"

namespace
{

using namespace ssim;

struct Options
{
    std::string command;
    std::string target;          // workload name or profile file
    std::string output;

    // Core configuration.
    cpu::CoreConfig cfg = cpu::CoreConfig::baseline();

    // Profiling.
    core::ProfileOptions profile;

    // Generation.
    core::GenerationOptions generation{20, 1, 1000};
    unsigned seeds = 1;          ///< --seeds N (simulate ensemble)

    uint64_t workloadScale = 1;
    bool report = false;

    // Sweep.
    std::vector<experiments::GridAxis> grids;
    unsigned jobs = 1;
    std::string journal;
    std::vector<std::string> journals;   ///< every --journal (train)
    bool resume = false;
    double pointTimeout = 0.0;
    unsigned retries = 1;
    std::string surrogatePath;    ///< --surrogate MODEL
    unsigned frontierMargin = 1;  ///< --frontier-margin K
    bool dryRun = false;          ///< --dry-run

    // Train / rank (the surrogate predictor).
    std::string modelKind = "ridge";  ///< --model-kind ridge|gbm
    double lambda = 1.0;              ///< --lambda F
    unsigned folds = 5;               ///< --folds N
    unsigned rounds = 300;            ///< --rounds N (gbm)
    double learningRate = 0.1;        ///< --learning-rate F (gbm)
    std::string profileFile;          ///< --profile FILE (train check)
    uint64_t topN = 20;               ///< --top N (rank; 0 = all)
    std::string rankBy = "edp";       ///< --by METRIC (rank)

    // Serve.
    size_t queueCapacity = 64;       ///< --queue N
    double deadlineMs = 0.0;         ///< --deadline-ms N (default)
    double drainMs = 5000.0;         ///< --drain-ms N
    double restartBackoffMs = 50.0;  ///< --restart-backoff-ms N
    std::string socketPath;          ///< --socket PATH

    // Fault injection (sweep / serve / chaos).
    std::string faultPlan;   ///< --fault-plan SPEC (inline or path)

    // Chaos.
    uint64_t chaosSchedules = 100;  ///< --schedules N
    std::string chaosMode = "all";  ///< --mode all|sweep|serve
    uint64_t chaosPoints = 6;       ///< --points N
    uint64_t chaosRequests = 24;    ///< --requests N
    uint64_t chaosReplay = 3;       ///< --replay-verify N
    std::string chaosDir = ".";     ///< --dir PATH
    bool chaosVerbose = false;      ///< --verbose

    // Observability.
    std::string statsJson;   ///< --stats-json FILE
    std::string tracePath;   ///< --trace FILE
    bool quiet = false;      ///< --quiet
};

/**
 * The journal path of the sweep in progress, so the top-level error
 * report can tell the user where their completed work lives.
 */
std::string activeJournalPath;

[[noreturn]] void
usage()
{
    std::cerr <<
        "usage: ssim <command> [args]\n"
        "  list                      list built-in workloads\n"
        "  profile <workload> -o F   profile and save\n"
        "  simulate <profile-file>   statistical simulation\n"
        "  eds <workload>            execution-driven simulation\n"
        "  compare <workload>        both, with error report\n"
        "  sweep <workload>          journaled parallel design sweep\n"
        "  train <journal> -o F      fit a surrogate model from sweep\n"
        "                            journals (ridge or gbm)\n"
        "  rank <model>              predict + rank a --grid without\n"
        "                            simulating\n"
        "  serve                     long-lived prediction daemon\n"
        "  chaos                     seeded fault-injection invariant\n"
        "                            harness over sweep + serve\n"
        "core options: --ruu N --lsq N --width N --ifq N\n"
        "              --scale-bpred L --scale-cache F\n"
        "              --perfect-caches --perfect-bpred\n"
        "profile options: --order K --immediate --skip N --max N\n"
        "generation options: --reduction R --seed S\n"
        "simulate ensemble: --seeds N (simulate seeds S..S+N-1 over\n"
        "  one shared generation model), --jobs N (ensemble threads;\n"
        "  0 = all cores; results are bit-identical at any count)\n"
        "workload options: --workload-scale N\n"
        "output options: --report (detailed pipeline/power tables)\n"
        "sweep options: --grid key=v1,v2,... (repeatable; keys: ruu,\n"
        "  lsq, width, ifq, scale-bpred, scale-cache), --jobs N\n"
        "  (0 = all cores), --journal FILE, --resume,\n"
        "  --point-timeout SEC, --retries N, --surrogate MODEL\n"
        "  (simulate only the predicted Pareto frontier),\n"
        "  --frontier-margin K (extra frontier shells kept; default\n"
        "  1), --dry-run (print the expanded grid and the journal\n"
        "  delta without simulating; annotates which points build a\n"
        "  generation model and which reuse a cached one)\n"
        "train options: <journal> [--journal FILE]... -o MODEL,\n"
        "  --model-kind ridge|gbm, --lambda F (ridge; default 1),\n"
        "  --folds N (cross-validation; default 5), --rounds N and\n"
        "  --learning-rate F (gbm; defaults 300, 0.1), --seed S,\n"
        "  --profile FILE (require the journals to come from this\n"
        "  profile), --stats-json FILE (CV error report)\n"
        "rank options: <model> --grid key=v1,v2,... (repeatable),\n"
        "  --by ipc|epc|edp (default edp), --top N (0 = all;\n"
        "  default 20)\n"
        "serve options: --jobs N (workers; 0 = all cores),\n"
        "  --queue N (admission capacity), --deadline-ms N (default\n"
        "  per-request deadline; 0 = none), --drain-ms N,\n"
        "  --restart-backoff-ms N, --socket PATH (Unix socket\n"
        "  instead of stdin/stdout), --stats-json FILE (final\n"
        "  serve.* snapshot on exit); batch requests\n"
        "  ({\"type\":\"batch\",\"jobs\":N,\"requests\":[...]}) run as one\n"
        "  parallel ensemble over shared generation models\n"
        "chaos options: --schedules N (default 100), --seed S,\n"
        "  --mode all|sweep|serve, --points N (sweep size),\n"
        "  --requests N (serve load), --replay-verify N,\n"
        "  --dir PATH (scratch journals), --verbose\n"
        "fault injection: --fault-plan SPEC (inline JSON or a path;\n"
        "  sweep/serve: arm the plan for the run, chaos: use it for\n"
        "  every schedule instead of generated plans); also the\n"
        "  SSIM_FAULT_PLAN env var, and the legacy SSIM_FSYNC_FAIL,\n"
        "  SSIM_SERVE_CRASH_ON, SSIM_SWEEP_CRASH_AFTER,\n"
        "  SSIM_SWEEP_STALL_POINT hooks\n"
        "observability options: --stats-json FILE (sweep: live\n"
        "  heartbeat), --trace FILE (Perfetto/chrome://tracing),\n"
        "  --quiet (errors only; also SSIM_LOG_LEVEL=error|warn|info)\n"
        "exit codes: 0 ok, 2 usage/argument error, 3 invalid\n"
        "  configuration, 4 profile parse error, 5 corrupted\n"
        "  profile, 6 profile version mismatch, 7 I/O error,\n"
        "  8 unknown workload, 9 internal error, 10 sweep\n"
        "  interrupted / serve drained by signal (resumable),\n"
        "  11 overloaded, 12 deadline exceeded, 13 worker\n"
        "  crashed, 14 shutting down (11-14 are also the serve\n"
        "  wire-protocol error categories)\n";
    std::exit(2);
}

/** Reject with a clear message; exits with the usage-error code. */
[[noreturn]] void
argError(const std::string &msg)
{
    throw Error(ErrorCategory::InvalidArgument,
                msg + " (run 'ssim' without arguments for usage)");
}

const char *
valueOf(int argc, char **argv, int &i)
{
    if (i + 1 >= argc)
        argError(std::string("option ") + argv[i] +
                 " requires a value");
    return argv[++i];
}

uint64_t
uintArg(int argc, char **argv, int &i)
{
    const std::string flag = argv[i];
    const std::string tok = valueOf(argc, argv, i);
    uint64_t v = 0;
    const auto [p, ec] =
        std::from_chars(tok.data(), tok.data() + tok.size(), v, 10);
    if (tok.empty() || ec != std::errc() ||
        p != tok.data() + tok.size()) {
        argError("option " + flag +
                 ": expected an unsigned integer, got '" + tok + "'");
    }
    return v;
}

int64_t
intArg(int argc, char **argv, int &i)
{
    const std::string flag = argv[i];
    const std::string tok = valueOf(argc, argv, i);
    int64_t v = 0;
    const auto [p, ec] =
        std::from_chars(tok.data(), tok.data() + tok.size(), v, 10);
    if (tok.empty() || ec != std::errc() ||
        p != tok.data() + tok.size()) {
        argError("option " + flag + ": expected an integer, got '" +
                 tok + "'");
    }
    return v;
}

double
floatArg(int argc, char **argv, int &i)
{
    const std::string flag = argv[i];
    const std::string tok = valueOf(argc, argv, i);
    errno = 0;
    char *end = nullptr;
    const double v = std::strtod(tok.c_str(), &end);
    if (tok.empty() || end != tok.c_str() + tok.size() ||
        errno == ERANGE || !std::isfinite(v) || v <= 0.0) {
        argError("option " + flag +
                 ": expected a positive finite number, got '" + tok +
                 "'");
    }
    return v;
}

/**
 * Parse "--grid key=v1,v2,...". Values are syntax-checked here; the
 * key itself is validated by the sweep grid layer, which names any
 * unknown key and the valid alternatives.
 */
experiments::GridAxis
gridArg(int argc, char **argv, int &i)
{
    const std::string spec = valueOf(argc, argv, i);
    const size_t eq = spec.find('=');
    if (eq == std::string::npos || eq == 0 || eq + 1 >= spec.size())
        argError("option --grid expects key=v1,v2,..., got '" + spec +
                 "'");
    experiments::GridAxis axis;
    axis.key = spec.substr(0, eq);
    size_t pos = eq + 1;
    while (pos <= spec.size()) {
        size_t comma = spec.find(',', pos);
        if (comma == std::string::npos)
            comma = spec.size();
        const std::string tok = spec.substr(pos, comma - pos);
        errno = 0;
        char *end = nullptr;
        const double v = std::strtod(tok.c_str(), &end);
        if (tok.empty() || end != tok.c_str() + tok.size() ||
            errno == ERANGE || !std::isfinite(v)) {
            argError("option --grid " + axis.key +
                     ": expected a number, got '" + tok + "'");
        }
        axis.values.push_back(v);
        pos = comma + 1;
    }
    return axis;
}

Options
parse(int argc, char **argv)
{
    if (argc < 2)
        usage();
    Options opts;
    opts.command = argv[1];
    int i = 2;
    // `list`, `serve`, and `chaos` take no target; everything else
    // names a workload, profile, journal, or model file.
    if (opts.command != "list" && opts.command != "serve" &&
        opts.command != "chaos") {
        if (i >= argc) {
            argError("command '" + opts.command +
                     "' requires a target (a workload name or a "
                     "profile/journal/model file)");
        }
        opts.target = argv[i++];
    }
    for (; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "-o") {
            opts.output = valueOf(argc, argv, i);
        } else if (arg == "--ruu") {
            opts.cfg.ruuSize = static_cast<uint32_t>(
                uintArg(argc, argv, i));
        } else if (arg == "--lsq") {
            opts.cfg.lsqSize = static_cast<uint32_t>(
                uintArg(argc, argv, i));
        } else if (arg == "--width") {
            const auto w = static_cast<uint32_t>(
                uintArg(argc, argv, i));
            opts.cfg.decodeWidth = w;
            opts.cfg.issueWidth = w;
            opts.cfg.commitWidth = w;
        } else if (arg == "--ifq") {
            opts.cfg.ifqSize = static_cast<uint32_t>(
                uintArg(argc, argv, i));
        } else if (arg == "--scale-bpred") {
            opts.cfg.bpred = opts.cfg.bpred.scaled(
                static_cast<int>(intArg(argc, argv, i)));
        } else if (arg == "--scale-cache") {
            const double f = floatArg(argc, argv, i);
            opts.cfg.il1 = opts.cfg.il1.scaled(f);
            opts.cfg.dl1 = opts.cfg.dl1.scaled(f);
            opts.cfg.l2 = opts.cfg.l2.scaled(f);
        } else if (arg == "--perfect-caches") {
            opts.cfg.perfectCaches = true;
            opts.profile.perfectCaches = true;
        } else if (arg == "--perfect-bpred") {
            opts.cfg.perfectBpred = true;
            opts.profile.perfectBpred = true;
        } else if (arg == "--order") {
            opts.profile.order = static_cast<int>(
                intArg(argc, argv, i));
        } else if (arg == "--immediate") {
            opts.profile.branchMode =
                core::BranchProfilingMode::ImmediateUpdate;
        } else if (arg == "--skip") {
            opts.profile.skipInsts = uintArg(argc, argv, i);
        } else if (arg == "--max") {
            opts.profile.maxInsts = uintArg(argc, argv, i);
        } else if (arg == "--reduction") {
            opts.generation.reductionFactor =
                uintArg(argc, argv, i);
        } else if (arg == "--seed") {
            opts.generation.seed = uintArg(argc, argv, i);
        } else if (arg == "--seeds") {
            const uint64_t n = uintArg(argc, argv, i);
            if (n == 0 || n > 4096)
                argError("option --seeds: expected 1..4096");
            opts.seeds = static_cast<unsigned>(n);
        } else if (arg == "--report") {
            opts.report = true;
        } else if (arg == "--workload-scale") {
            opts.workloadScale = uintArg(argc, argv, i);
        } else if (arg == "--grid") {
            opts.grids.push_back(gridArg(argc, argv, i));
        } else if (arg == "--jobs") {
            opts.jobs = static_cast<unsigned>(uintArg(argc, argv, i));
        } else if (arg == "--journal") {
            opts.journal = valueOf(argc, argv, i);
            opts.journals.push_back(opts.journal);
        } else if (arg == "--resume") {
            opts.resume = true;
        } else if (arg == "--point-timeout") {
            opts.pointTimeout = floatArg(argc, argv, i);
        } else if (arg == "--retries") {
            opts.retries = static_cast<unsigned>(
                uintArg(argc, argv, i));
        } else if (arg == "--surrogate") {
            opts.surrogatePath = valueOf(argc, argv, i);
        } else if (arg == "--frontier-margin") {
            opts.frontierMargin = static_cast<unsigned>(
                uintArg(argc, argv, i));
        } else if (arg == "--dry-run") {
            opts.dryRun = true;
        } else if (arg == "--model-kind") {
            opts.modelKind = valueOf(argc, argv, i);
        } else if (arg == "--lambda") {
            opts.lambda = floatArg(argc, argv, i);
        } else if (arg == "--folds") {
            // 0 and 1 are meaningful ("skip cross-validation").
            opts.folds = static_cast<unsigned>(
                uintArg(argc, argv, i));
        } else if (arg == "--rounds") {
            opts.rounds = static_cast<unsigned>(
                uintArg(argc, argv, i));
        } else if (arg == "--learning-rate") {
            opts.learningRate = floatArg(argc, argv, i);
        } else if (arg == "--profile") {
            opts.profileFile = valueOf(argc, argv, i);
        } else if (arg == "--top") {
            // 0 is meaningful ("print every point").
            opts.topN = uintArg(argc, argv, i);
        } else if (arg == "--by") {
            opts.rankBy = valueOf(argc, argv, i);
        } else if (arg == "--queue") {
            opts.queueCapacity = uintArg(argc, argv, i);
        } else if (arg == "--deadline-ms") {
            // 0 is meaningful here ("no default deadline"), so this
            // flag takes the non-negative integer path.
            opts.deadlineMs =
                static_cast<double>(uintArg(argc, argv, i));
        } else if (arg == "--drain-ms") {
            opts.drainMs = floatArg(argc, argv, i);
        } else if (arg == "--restart-backoff-ms") {
            opts.restartBackoffMs = floatArg(argc, argv, i);
        } else if (arg == "--socket") {
            opts.socketPath = valueOf(argc, argv, i);
        } else if (arg == "--fault-plan") {
            opts.faultPlan = valueOf(argc, argv, i);
        } else if (arg == "--schedules") {
            opts.chaosSchedules = uintArg(argc, argv, i);
        } else if (arg == "--mode") {
            opts.chaosMode = valueOf(argc, argv, i);
        } else if (arg == "--points") {
            opts.chaosPoints = uintArg(argc, argv, i);
        } else if (arg == "--requests") {
            opts.chaosRequests = uintArg(argc, argv, i);
        } else if (arg == "--replay-verify") {
            // 0 is meaningful ("skip replay verification").
            opts.chaosReplay = uintArg(argc, argv, i);
        } else if (arg == "--dir") {
            opts.chaosDir = valueOf(argc, argv, i);
        } else if (arg == "--verbose") {
            opts.chaosVerbose = true;
        } else if (arg == "--stats-json") {
            opts.statsJson = valueOf(argc, argv, i);
        } else if (arg == "--trace") {
            opts.tracePath = valueOf(argc, argv, i);
        } else if (arg == "--quiet") {
            opts.quiet = true;
        } else {
            argError("unknown option '" + arg + "'");
        }
    }
    return opts;
}

/**
 * Observability plumbing for one run command: the registry and trace
 * buffer, the ObsSink view the simulation publishes through, and the
 * manifest stamped into whatever gets written. Only the outputs the
 * user asked for are enabled, so a plain run pays nothing.
 */
struct ObsOutputs
{
    obs::Registry registry;
    obs::TraceLog trace;
    core::ObsSink sink;
    obs::RunManifest manifest;
    bool enabled = false;

    ObsOutputs(const Options &opts, uint64_t profileChecksum,
               bool hasProfileChecksum)
    {
        manifest = obs::makeManifest(opts.command);
        manifest.workload = opts.target;
        manifest.configHash = experiments::configHash(opts.cfg);
        manifest.seed = opts.generation.seed;
        manifest.profileChecksum = profileChecksum;
        manifest.hasProfileChecksum = hasProfileChecksum;
        if (!opts.statsJson.empty())
            sink.registry = &registry;
        if (!opts.tracePath.empty())
            sink.trace = &trace;
        enabled = sink.registry || sink.trace;
    }

    /** The sink pointer to pass into the simulation (null = off). */
    const core::ObsSink *sinkPtr() const
    {
        return enabled ? &sink : nullptr;
    }

    /** Write the requested export files; throws on I/O failure. */
    void writeFiles(const Options &opts) const
    {
        if (!opts.statsJson.empty()) {
            const Expected<void> r = obs::writeStatsJson(
                opts.statsJson, registry.snapshot(), manifest);
            if (!r)
                throw r.error();
        }
        if (!opts.tracePath.empty()) {
            const Expected<void> r =
                trace.write(opts.tracePath, manifest);
            if (!r)
                throw r.error();
        }
    }
};

/**
 * The payload checksum declared in a profile file's header — the
 * provenance value for the manifest. Called only after
 * loadProfileFile() has validated the file, so the header is known to
 * be well-formed ("ssim-profile <ver> <fnv1a64-hex> <bytes>").
 */
uint64_t
onDiskProfileChecksum(const std::string &path)
{
    std::ifstream is(path);
    std::string magic, version, sum;
    if (!(is >> magic >> version >> sum))
        return 0;
    return std::strtoull(sum.c_str(), nullptr, 16);
}

void
printResult(const char *label, const core::SimResult &res)
{
    TextTable table;
    table.setHeader({"metric", label});
    table.addRow({"IPC", TextTable::num(res.ipc)});
    table.addRow({"EPC (W)", TextTable::num(res.epc, 2)});
    table.addRow({"EDP", TextTable::num(res.edp, 2)});
    table.addRow({"cycles", std::to_string(res.stats.cycles)});
    table.addRow({"committed", std::to_string(res.stats.committed)});
    table.addRow({"mispredicts/1K",
                  TextTable::num(res.stats.mispredictsPerKilo(), 2)});
    table.print(std::cout);
}

int
cmdList()
{
    TextTable table;
    table.setHeader({"workload", "archetype", "description"});
    for (const auto &info : workloads::suite())
        table.addRow({info.name, info.archetype, info.description});
    table.print(std::cout);
    return 0;
}

int
cmdProfile(const Options &opts)
{
    if (opts.output.empty()) {
        std::cerr << "profile: -o <file> is required\n";
        return 2;
    }
    const isa::Program prog =
        workloads::build(opts.target, opts.workloadScale);
    const core::StatisticalProfile profile =
        core::buildProfile(prog, opts.cfg, opts.profile);
    core::saveProfileFile(profile, opts.output);
    std::cout << "profiled " << profile.instructions
              << " instructions; " << profile.nodeCount()
              << " SFG nodes, " << profile.qualifiedBlockCount()
              << " qualified blocks -> " << opts.output << "\n";
    return 0;
}

/**
 * `simulate --seeds N`: seeds S..S+N-1 walked over one shared
 * generation model and simulated by the ensemble pool (--jobs
 * threads). Per-seed results are bit-identical to N serial
 * single-seed runs; the table is followed by the mean and
 * coefficient of variation the paper's section 4.1 uses to argue
 * one seed suffices.
 */
int
simulateEnsemble(const Options &opts,
                 core::StatisticalProfile &&profile, ObsOutputs &out)
{
    auto shared = std::make_shared<const core::StatisticalProfile>(
        std::move(profile));
    const std::shared_ptr<const core::GenModel> model =
        core::GenModelCache::instance().get(shared, opts.generation);
    std::vector<uint64_t> seeds(opts.seeds);
    for (unsigned s = 0; s < opts.seeds; ++s)
        seeds[s] = opts.generation.seed + s;
    core::EnsembleOptions eopts;
    eopts.jobs = opts.jobs;
    core::EnsembleStats estats;
    const std::vector<core::SimResult> results =
        core::runSeedEnsemble(model, opts.cfg, seeds, eopts, &estats);

    TextTable table;
    table.setHeader({"seed", "IPC", "EPC (W)", "EDP", "cycles"});
    RunningStats ipc;
    for (size_t s = 0; s < results.size(); ++s) {
        const core::SimResult &res = results[s];
        ipc.add(res.ipc);
        table.addRow({std::to_string(seeds[s]),
                      TextTable::num(res.ipc),
                      TextTable::num(res.epc, 2),
                      TextTable::num(res.edp, 2),
                      std::to_string(res.stats.cycles)});
    }
    table.print(std::cout);
    std::cout << "ensemble: " << opts.seeds << " seeds on "
              << estats.threads << " thread(s), one shared model (R="
              << opts.generation.reductionFactor
              << ", streamed); IPC mean " << TextTable::num(ipc.mean())
              << ", CoV " << TextTable::pct(ipc.cov()) << "\n";
    if (out.sink.registry) {
        core::publishEnsembleStats(*out.sink.registry, "core.ensemble",
                                   estats);
        core::publishModelCacheStats(*out.sink.registry,
                                     "core.gen.model_cache");
    }
    out.writeFiles(opts);
    return 0;
}

int
cmdSimulate(const Options &opts)
{
    // Validate the configuration before loading or generating
    // anything: a bad knob should not cost a generation pass.
    opts.cfg.validate();
    opts.generation.validate();
    core::StatisticalProfile profile =
        core::loadProfileFile(opts.target);
    ObsOutputs out(opts, onDiskProfileChecksum(opts.target), true);
    if (opts.seeds > 1)
        return simulateEnsemble(opts, std::move(profile), out);
    // Streamed: instructions are generated into a bounded ring and
    // consumed by the core directly, never materialized as a vector.
    core::StreamingGenerator gen(
        profile, opts.generation,
        core::requiredStreamLookback(opts.cfg));
    const core::SimResult res =
        core::simulateSyntheticStream(gen, opts.cfg, out.sinkPtr());
    std::cout << "synthetic trace: " << gen.generated()
              << " instructions (R="
              << opts.generation.reductionFactor << ", streamed)\n";
    if (opts.report)
        core::printFullReport(std::cout, "statistical", res, opts.cfg);
    else
        printResult("statistical", res);
    out.writeFiles(opts);
    return 0;
}

int
cmdEds(const Options &opts)
{
    const isa::Program prog =
        workloads::build(opts.target, opts.workloadScale);
    ObsOutputs out(opts, 0, false);
    const core::SimResult res =
        core::runExecutionDriven(prog, opts.cfg, {}, out.sinkPtr());
    if (opts.report)
        core::printFullReport(std::cout, "execution-driven", res,
                              opts.cfg);
    else
        printResult("execution-driven", res);
    out.writeFiles(opts);
    return 0;
}

int
cmdCompare(const Options &opts)
{
    const isa::Program prog =
        workloads::build(opts.target, opts.workloadScale);
    core::StatSimOptions ssOpts;
    ssOpts.profile = opts.profile;
    ssOpts.generation = opts.generation;
    const core::SimResult ss =
        core::runStatisticalSimulation(prog, opts.cfg, ssOpts);
    const core::SimResult eds =
        core::runExecutionDriven(prog, opts.cfg);

    TextTable table;
    table.setHeader({"metric", "statistical", "execution-driven",
                     "abs error"});
    table.addRow({"IPC", TextTable::num(ss.ipc),
                  TextTable::num(eds.ipc),
                  TextTable::pct(absoluteError(ss.ipc, eds.ipc))});
    table.addRow({"EPC (W)", TextTable::num(ss.epc, 2),
                  TextTable::num(eds.epc, 2),
                  TextTable::pct(absoluteError(ss.epc, eds.epc))});
    table.addRow({"EDP", TextTable::num(ss.edp, 2),
                  TextTable::num(eds.edp, 2),
                  TextTable::pct(absoluteError(ss.edp, eds.edp))});
    table.print(std::cout);
    if (opts.report)
        core::printComparison(std::cout, ss, eds);
    return 0;
}

/** JournalMetric list -> the sweep engine's (name, value) pairs. */
experiments::PointMetrics
toPointMetrics(const std::vector<util::JournalMetric> &metrics)
{
    experiments::PointMetrics out;
    out.reserve(metrics.size());
    for (const util::JournalMetric &m : metrics)
        out.emplace_back(m.name, m.value);
    return out;
}

int
cmdTrain(const Options &opts)
{
    if (opts.output.empty()) {
        std::cerr << "train: -o <model-file> is required\n";
        return 2;
    }
    proxy::TrainOptions topts;
    topts.kind = proxy::modelKindFromName(opts.modelKind);
    topts.lambda = opts.lambda;
    topts.folds = opts.folds;
    topts.seed = opts.generation.seed;
    topts.rounds = opts.rounds;
    topts.learningRate = opts.learningRate;
    topts.validate();

    // The positional target is the first journal; --journal adds
    // more. All of them must carry the same profile provenance.
    std::vector<std::string> journals{opts.target};
    journals.insert(journals.end(), opts.journals.begin(),
                    opts.journals.end());
    const proxy::Dataset ds = proxy::loadDataset(journals);
    if (ds.skippedCorrupt > 0) {
        warn("train: skipped " + std::to_string(ds.skippedCorrupt) +
             " corrupt journal line(s)");
    }
    if (!opts.profileFile.empty()) {
        const core::StatisticalProfile profile =
            core::loadProfileFile(opts.profileFile);
        const uint64_t digest = core::profileDigest(profile);
        if (digest != ds.profileChecksum) {
            throw Error(
                ErrorCategory::InvalidArgument,
                "journal(s) were swept from a different profile "
                "than " + opts.profileFile +
                " (journal profile digest " + util::json::hex64Token(
                    ds.profileChecksum) + ", file digest " +
                util::json::hex64Token(digest) + ")");
        }
    }

    const proxy::SurrogateModel model = proxy::trainModel(ds, topts);
    proxy::saveModelFile(model, opts.output);

    TextTable table;
    table.setHeader({"target", "space", "cv MAE", "cv RMSE",
                     "cv MAPE"});
    for (const proxy::TargetModel &t : model.targets) {
        table.addRow({t.name, t.logSpace ? "log" : "linear",
                      model.cvFolds
                          ? TextTable::num(t.cv.mae, 4)
                          : std::string("-"),
                      model.cvFolds
                          ? TextTable::num(t.cv.rmse, 4)
                          : std::string("-"),
                      model.cvFolds ? TextTable::pct(t.cv.mape)
                                    : std::string("-")});
    }
    table.print(std::cout);
    std::cout << "train: " << proxy::modelKindName(model.kind)
              << " model over " << model.trainRows << " rows ("
              << ds.journalCount << " journal(s), "
              << model.configNames.size() << "+"
              << model.profileNames.size() << " features, "
              << (model.cvFolds
                      ? std::to_string(model.cvFolds) + "-fold CV"
                      : std::string("CV skipped: too few rows"))
              << ") -> " << opts.output << "\n";

    if (!opts.statsJson.empty()) {
        obs::RunManifest manifest = obs::makeManifest("train");
        manifest.seed = topts.seed;
        manifest.profileChecksum = ds.profileChecksum;
        manifest.hasProfileChecksum = true;
        obs::Registry reg;
        reg.gauge("proxy.train.rows").set(double(model.trainRows));
        reg.gauge("proxy.train.journals")
            .set(double(ds.journalCount));
        reg.gauge("proxy.train.skipped_corrupt")
            .set(double(ds.skippedCorrupt));
        reg.gauge("proxy.train.cv_folds").set(double(model.cvFolds));
        reg.gauge("proxy.train.features")
            .set(double(model.configNames.size() +
                        model.profileNames.size()));
        for (const proxy::TargetModel &t : model.targets) {
            reg.gauge("proxy.cv." + t.name + ".mae").set(t.cv.mae);
            reg.gauge("proxy.cv." + t.name + ".rmse").set(t.cv.rmse);
            reg.gauge("proxy.cv." + t.name + ".mape").set(t.cv.mape);
        }
        const Expected<void> w = obs::writeStatsJson(
            opts.statsJson, reg.snapshot(), manifest);
        if (!w)
            throw w.error();
    }
    return 0;
}

int
cmdRank(const Options &opts)
{
    namespace exp = ssim::experiments;
    if (opts.grids.empty()) {
        argError("rank requires at least one --grid axis "
                 "(e.g. --grid ruu=16,32,64)");
    }
    const proxy::SurrogateModel model =
        proxy::loadModelFile(opts.target);
    opts.cfg.validate();
    const std::vector<exp::ConfigPoint> grid =
        exp::expandConfigGrid(opts.cfg, opts.grids);

    struct Ranked
    {
        size_t index = 0;
        double ipc = 0, epc = 0, edp = 0, key = 0;
        bool frontier = false;
    };
    const proxy::TargetModel *ipcT = model.findTarget("ipc");
    const proxy::TargetModel *epcT = model.findTarget("epc");
    const proxy::TargetModel *edpT = model.findTarget("edp");
    const proxy::TargetModel *keyT = model.findTarget(opts.rankBy);
    // EDP derives from IPC and EPC when the model never learned it
    // directly (EDP = EPC / IPC^2).
    const bool derivedEdp = !edpT && ipcT && epcT;
    if (!keyT && !(opts.rankBy == "edp" && derivedEdp)) {
        argError("rank --by " + opts.rankBy +
                 ": model has no such target");
    }

    std::vector<Ranked> ranked;
    ranked.reserve(grid.size());
    std::vector<proxy::ParetoPoint> preds;
    for (size_t i = 0; i < grid.size(); ++i) {
        const std::vector<double> x =
            model.featuresFor(grid[i].cfg);
        Ranked r;
        r.index = i;
        r.ipc = ipcT ? model.predict(*ipcT, x) : 0.0;
        r.epc = epcT ? model.predict(*epcT, x) : 0.0;
        if (edpT)
            r.edp = model.predict(*edpT, x);
        else if (derivedEdp && r.ipc > 0)
            r.edp = r.epc / (r.ipc * r.ipc);
        r.key = keyT ? model.predict(*keyT, x) : r.edp;
        ranked.push_back(r);
        if (ipcT && epcT)
            preds.push_back({i, r.ipc, r.epc});
    }
    if (ipcT && epcT) {
        for (const size_t idx : proxy::paretoFrontier(preds))
            ranked[idx].frontier = true;
    }

    // IPC is a maximize metric; everything else (epc, edp) ranks
    // ascending. Ties break on grid order for a stable listing.
    const bool descending = opts.rankBy == "ipc";
    std::sort(ranked.begin(), ranked.end(),
              [&](const Ranked &a, const Ranked &b) {
                  if (a.key != b.key)
                      return descending ? a.key > b.key
                                        : a.key < b.key;
                  return a.index < b.index;
              });

    const size_t n = opts.topN == 0
                         ? ranked.size()
                         : std::min<size_t>(opts.topN,
                                            ranked.size());
    TextTable table;
    table.setHeader({"rank", "point", "pred IPC", "pred EPC (W)",
                     "pred EDP", "pareto"});
    for (size_t r = 0; r < n; ++r) {
        const Ranked &p = ranked[r];
        table.addRow({std::to_string(r + 1), grid[p.index].name,
                      ipcT ? TextTable::num(p.ipc) : "-",
                      epcT ? TextTable::num(p.epc, 2) : "-",
                      edpT || derivedEdp ? TextTable::num(p.edp, 2)
                                         : "-",
                      p.frontier ? "*" : ""});
    }
    table.print(std::cout);
    std::cout << "rank: " << grid.size() << " points by predicted "
              << opts.rankBy << " (" << proxy::modelKindName(
                     model.kind) << " model, showing " << n << ")\n";
    return 0;
}

int
cmdSweep(const Options &opts)
{
    namespace exp = ssim::experiments;
    if (opts.grids.empty()) {
        argError("sweep requires at least one --grid axis "
                 "(e.g. --grid ruu=16,32,64)");
    }
    // Fail fast on bad knobs before any profiling work: the base
    // configuration, every grid key/value, and the sweep options go
    // through the typed validation layer. A *point* whose combined
    // configuration is invalid is not fatal — it is recorded in the
    // journal as a typed error and the sweep continues.
    opts.cfg.validate();
    opts.generation.validate();
    const std::vector<exp::ConfigPoint> grid =
        exp::expandConfigGrid(opts.cfg, opts.grids);

    exp::SweepOptions sopts;
    sopts.jobs = opts.jobs;
    sopts.seed = opts.generation.seed;
    sopts.pointTimeoutSeconds = opts.pointTimeout;
    sopts.maxRetries = opts.retries;
    sopts.journalPath = opts.journal;
    sopts.resume = opts.resume;
    sopts.handleSignals = true;

    // Observability: --trace records per-worker point timelines;
    // --stats-json is the live heartbeat the engine rewrites as
    // points settle (its final rewrite is the end-of-sweep state).
    obs::RunManifest manifest = obs::makeManifest("sweep");
    manifest.workload = opts.target;
    manifest.configHash = exp::configHash(opts.cfg);
    manifest.seed = opts.generation.seed;
    obs::TraceLog traceLog;
    if (!opts.tracePath.empty())
        sopts.trace = &traceLog;
    sopts.heartbeatPath = opts.statsJson;
    sopts.manifest = &manifest;
    sopts.validate();
    activeJournalPath = opts.journal;

    exp::Benchmark bench{opts.target, "",
                         workloads::build(opts.target,
                                          opts.workloadScale)};
    exp::StatSimKnobs baseKnobs;
    baseKnobs.order = opts.profile.order;
    baseKnobs.branchMode = opts.profile.branchMode;
    baseKnobs.reductionFactor = opts.generation.reductionFactor;
    baseKnobs.perfectCaches = opts.profile.perfectCaches;
    baseKnobs.perfectBpred = opts.profile.perfectBpred;
    baseKnobs.skipInsts = opts.profile.skipInsts;
    baseKnobs.maxInsts =
        opts.profile.maxInsts == ~0ull ? 0 : opts.profile.maxInsts;

    std::vector<exp::SweepPoint> points;
    points.reserve(grid.size());
    for (const exp::ConfigPoint &point : grid) {
        points.push_back(
            {point.name, exp::configHash(point.cfg),
             toPointMetrics(proxy::configFeatureMetrics(point.cfg))});
    }

    // Provenance + training features for the journal header: the
    // canonical profile digest names the program-as-profiled, so
    // `ssim train` can refuse to mix journals from different
    // profiles, and a --surrogate model is checked against the same
    // digest. A plain --dry-run skips the profiling pass — it must
    // stay cheap — unless a surrogate needs validating.
    if (!opts.dryRun || !opts.surrogatePath.empty()) {
        const core::StatisticalProfile baseProfile =
            core::buildProfile(bench.program, opts.cfg,
                               opts.profile);
        sopts.profileChecksum = core::profileDigest(baseProfile);
        sopts.baseConfigHash = exp::configHash(opts.cfg);
        sopts.profileFeatures = toPointMetrics(
            proxy::profileFeatureMetrics(baseProfile));
    }

    // Surrogate pruning: predict every point, keep the predicted
    // Pareto frontier (IPC up, EPC down) plus --frontier-margin
    // extra shells, and let the engine journal the rest as pruned.
    std::vector<uint8_t> keepMask;
    if (!opts.surrogatePath.empty()) {
        const proxy::SurrogateModel model =
            proxy::loadModelFile(opts.surrogatePath);
        if (model.profileChecksum != sopts.profileChecksum) {
            throw Error(
                ErrorCategory::InvalidArgument,
                "surrogate model " + opts.surrogatePath +
                    " was trained on a different profile (model "
                    "digest " + util::json::hex64Token(model.profileChecksum) +
                    ", this workload profiles to " +
                    util::json::hex64Token(sopts.profileChecksum) +
                    "); retrain it from this workload's journals");
        }
        const proxy::TargetModel *ipcT = model.findTarget("ipc");
        const proxy::TargetModel *epcT = model.findTarget("epc");
        if (!ipcT || !epcT) {
            throw Error(ErrorCategory::InvalidArgument,
                        "surrogate pruning needs a model with both "
                        "ipc and epc targets");
        }
        std::vector<proxy::ParetoPoint> preds;
        preds.reserve(grid.size());
        for (size_t i = 0; i < grid.size(); ++i) {
            const std::vector<double> x =
                model.featuresFor(grid[i].cfg);
            preds.push_back({i, model.predict(*ipcT, x),
                             model.predict(*epcT, x)});
        }
        keepMask = proxy::frontierMask(preds, opts.frontierMargin);
        const size_t kept = static_cast<size_t>(std::count(
            keepMask.begin(), keepMask.end(), uint8_t{1}));
        std::cout << "surrogate: keeping " << kept << " of "
                  << grid.size()
                  << " points (predicted Pareto frontier + margin "
                  << opts.frontierMargin << ")\n";
        sopts.keepMask = &keepMask;
    }

    if (opts.dryRun) {
        const exp::SweepPlan plan = exp::planSweep(points, sopts);
        // Generation-model annotation: the model is a pure function
        // of (profile, reduction factor), and the profile of
        // everything in profileCacheKey(), so among the points that
        // will actually simulate, the first with a given key builds
        // the model and every later one reuses it from the cache.
        std::set<std::string> modelKeys;
        TextTable table;
        table.setHeader({"point", "action", "journaled", "attempts",
                         "gen model"});
        for (size_t p = 0; p < grid.size(); ++p) {
            const exp::PointPlan &pl = plan.points[p];
            std::string genModel = "-";
            if (pl.action == exp::PlanAction::Run ||
                pl.action == exp::PlanAction::Retry) {
                exp::StatSimKnobs knobs = baseKnobs;
                cpu::CoreConfig pcfg = grid[p].cfg;
                pcfg.perfectCaches = knobs.perfectCaches;
                pcfg.perfectBpred = knobs.perfectBpred;
                genModel = modelKeys
                               .insert(exp::profileCacheKey(
                                   bench, pcfg, knobs))
                               .second
                               ? "build"
                               : "cached";
            }
            table.addRow({grid[p].name,
                          exp::planActionName(pl.action),
                          exp::pointStatusName(pl.journaled),
                          std::to_string(pl.attempts), genModel});
        }
        table.print(std::cout);
        if (plan.skippedCorrupt > 0) {
            warn("dry-run: skipped " +
                 std::to_string(plan.skippedCorrupt) +
                 " corrupt journal line(s)");
        }
        std::cout << "dry-run: " << grid.size() << " points -> "
                  << plan.runCount << " to run, " << plan.retryCount
                  << " to retry, " << plan.reuseCount
                  << " reused from journal, " << plan.pruneCount
                  << " pruned; nothing was simulated\n";
        return 0;
    }

    const exp::SweepSummary summary = exp::runSweep(
        points,
        [&](size_t index, uint64_t seed) {
            exp::StatSimKnobs knobs = baseKnobs;
            knobs.seed = seed;
            // Per-point gen+sim wall time and peak RSS land in the
            // journal's `wall_s` / `peak_rss_kb` attempt fields, not
            // here: `metrics` values must be bit-reproducible across
            // crash+resume.
            const core::SimResult res =
                exp::runStatSim(bench, grid[index].cfg, knobs);
            return exp::PointMetrics{
                {"ipc", res.ipc},
                {"epc", res.epc},
                {"edp", res.edp},
                {"cycles", static_cast<double>(res.stats.cycles)},
            };
        },
        sopts);

    TextTable table;
    table.setHeader({"point", "status", "attempts", "IPC", "EPC (W)",
                     "EDP"});
    for (size_t p = 0; p < grid.size(); ++p) {
        const exp::PointOutcome &o = summary.outcomes[p];
        std::string ipc = "-", epc = "-", edp = "-";
        std::string status = exp::pointStatusName(o.status);
        if (o.status == exp::PointStatus::Ok) {
            for (const auto &[name, value] : o.metrics) {
                if (name == "ipc")
                    ipc = TextTable::num(value);
                else if (name == "epc")
                    epc = TextTable::num(value, 2);
                else if (name == "edp")
                    edp = TextTable::num(value, 2);
            }
            if (o.reused)
                status += " (journal)";
        } else if (o.status == exp::PointStatus::Error) {
            status += " [" + std::string(errorCategoryName(
                                 o.errorCategory)) + "]";
        }
        table.addRow({grid[p].name, status,
                      std::to_string(o.attempts), ipc, epc, edp});
    }
    table.print(std::cout);

    if (!opts.tracePath.empty()) {
        const Expected<void> w =
            traceLog.write(opts.tracePath, manifest);
        if (!w)
            throw w.error();
        std::cout << "trace: " << opts.tracePath << " ("
                  << traceLog.size() << " events)\n";
    }

    std::cout << "sweep: " << summary.okCount << " ok, "
              << summary.errorCount << " error, "
              << summary.timeoutCount << " timeout, "
              << summary.crashedCount << " crashed, "
              << summary.pendingCount << " pending, "
              << summary.prunedCount << " pruned; re-ran "
              << summary.executedCount << " points, reused "
              << summary.reusedCount << " from journal\n";
    if (!opts.journal.empty())
        std::cout << "journal: " << opts.journal << "\n";
    for (size_t p = 0; p < grid.size(); ++p) {
        const exp::PointOutcome &o = summary.outcomes[p];
        if (o.status == exp::PointStatus::Error ||
            o.status == exp::PointStatus::Timeout ||
            o.status == exp::PointStatus::Crashed) {
            std::cerr << "sweep: point '" << grid[p].name << "' "
                      << exp::pointStatusName(o.status);
            if (o.status == exp::PointStatus::Error)
                std::cerr << " ["
                          << errorCategoryName(o.errorCategory)
                          << "]";
            if (!o.message.empty())
                std::cerr << ": " << o.message;
            std::cerr << "\n";
        }
    }
    if (summary.interrupted) {
        std::cerr << "sweep: interrupted; rerun with --resume"
                  << (opts.journal.empty()
                          ? " (no journal was kept, so a rerun "
                            "starts over)"
                          : " --journal " + opts.journal)
                  << " to finish the remaining points\n";
        return exp::SweepInterruptedExitCode;
    }
    return 0;
}

int
cmdServe(const Options &opts)
{
    serve::ServeOptions sopts;
    sopts.workers = opts.jobs;
    sopts.queueCapacity = opts.queueCapacity;
    sopts.defaultDeadlineSeconds = opts.deadlineMs / 1000.0;
    sopts.drainBudgetSeconds = opts.drainMs / 1000.0;
    sopts.restartBackoffSeconds = opts.restartBackoffMs / 1000.0;
    sopts.restartBackoffCapSeconds =
        std::max(sopts.restartBackoffSeconds, 2.0);

    // --trace records per-request spans (admission -> predict ->
    // respond) on per-worker tracks, written once at exit.
    obs::TraceLog traceLog;
    if (!opts.tracePath.empty())
        sopts.trace = &traceLog;
    sopts.validate();

    obs::RunManifest manifest = obs::makeManifest("serve");
    manifest.seed = opts.generation.seed;

    serve::Server server(serve::makeStatSimPredictFn(), sopts,
                         &manifest);
    // Batch requests bypass the per-item loop: one shared-model
    // ensemble per batch, at the request's `jobs` thread count.
    server.setBatchFn(serve::makeStatSimBatchFn());
    server.start();
    serve::TransportOptions topts;
    topts.handleSignals = true;
    const int rc =
        opts.socketPath.empty()
            ? serve::runStdioTransport(server, topts)
            : serve::runUnixSocketTransport(server, opts.socketPath,
                                            topts);
    // The final snapshot is the daemon's parting account of itself:
    // everything served, shed, timed out, crashed, and restarted.
    if (!opts.statsJson.empty()) {
        const Expected<void> w = obs::writeStatsJson(
            opts.statsJson, server.metricsSnapshot(), manifest);
        if (!w)
            throw w.error();
    }
    if (!opts.tracePath.empty()) {
        const Expected<void> w =
            traceLog.write(opts.tracePath, manifest);
        if (!w)
            throw w.error();
    }
    return rc;
}

int
cmdChaos(const Options &opts)
{
    fault::ChaosOptions copts;
    copts.seed = opts.generation.seed;
    copts.schedules = opts.chaosSchedules;
    if (opts.chaosMode == "all")
        copts.mode = fault::ChaosMode::All;
    else if (opts.chaosMode == "sweep")
        copts.mode = fault::ChaosMode::Sweep;
    else if (opts.chaosMode == "serve")
        copts.mode = fault::ChaosMode::Serve;
    else
        argError("option --mode expects all|sweep|serve, got '" +
                 opts.chaosMode + "'");
    copts.points = opts.chaosPoints;
    copts.requests = opts.chaosRequests;
    copts.replayVerify = opts.chaosReplay;
    copts.scratchDir = opts.chaosDir;
    copts.fixedPlanSpec = opts.faultPlan;
    copts.verbose = opts.chaosVerbose;

    const fault::ChaosReport report = fault::runChaos(copts);
    std::cout << "chaos: " << report.schedulesRun << " schedules ("
              << report.sweepSchedules << " sweep, "
              << report.serveSchedules << " serve), "
              << report.childCrashes << " injected crashes, "
              << report.serveFaultsFired << " serve faults fired, "
              << report.replaysVerified << " replays verified\n";
    if (!report.violations.empty()) {
        for (const std::string &v : report.violations)
            std::cerr << "chaos: VIOLATION: " << v << "\n";
        throw Error(ErrorCategory::Internal,
                    std::to_string(report.violations.size()) +
                        " chaos invariant violation(s); see above");
    }
    std::cout << "chaos: all invariants held\n";
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    // Terminating the process is CLI policy: the library reports
    // failures as typed ssim::Error, and this is the single place
    // they become exit codes (one per category; see usage()).
    try {
        const Options opts = parse(argc, argv);
        if (opts.quiet)
            setLogLevel(LogLevel::Error);
        // Arm fault injection for this run. `chaos` owns the
        // registry itself (its schedules install their own plans), so
        // its --fault-plan travels via ChaosOptions instead.
        if (opts.command != "chaos") {
            if (!opts.faultPlan.empty()) {
                Expected<fault::FaultPlan> plan =
                    fault::FaultPlan::loadSpec(opts.faultPlan);
                if (!plan)
                    throw plan.error();
                fault::installPlan(std::make_shared<fault::FaultPlan>(
                    std::move(plan.value())));
            } else {
                fault::installPlanFromEnv();
            }
        }
        if (opts.command == "list")
            return cmdList();
        if (opts.command == "profile")
            return cmdProfile(opts);
        if (opts.command == "simulate")
            return cmdSimulate(opts);
        if (opts.command == "eds")
            return cmdEds(opts);
        if (opts.command == "compare")
            return cmdCompare(opts);
        if (opts.command == "sweep")
            return cmdSweep(opts);
        if (opts.command == "train")
            return cmdTrain(opts);
        if (opts.command == "rank")
            return cmdRank(opts);
        if (opts.command == "serve")
            return cmdServe(opts);
        if (opts.command == "chaos")
            return cmdChaos(opts);
        std::cerr << "ssim: unknown command '" << opts.command
                  << "'\n";
        usage();
    } catch (const ssim::Error &e) {
        std::cerr << "ssim: " << e.what() << "\n";
        std::cerr << "ssim: error category: "
                  << ssim::errorCategoryName(e.category())
                  << " (exit " << ssim::exitCodeFor(e.category())
                  << ")\n";
        if (!activeJournalPath.empty())
            std::cerr << "ssim: journal: " << activeJournalPath
                      << "\n";
        return ssim::exitCodeFor(e.category());
    } catch (const std::exception &e) {
        std::cerr << "ssim: internal error: " << e.what() << "\n";
        if (!activeJournalPath.empty())
            std::cerr << "ssim: journal: " << activeJournalPath
                      << "\n";
        return ssim::exitCodeFor(ssim::ErrorCategory::Internal);
    }
}
