/**
 * @file
 * Figure 8: modeling program phases. The reference stream is each
 * benchmark's full run; statistical simulation is applied (i) to the
 * whole stream with one profile, (ii) per tenth, (iii) per
 * hundredth — with per-slice synthetic traces whose metrics are
 * combined — and compared against (iv) SimPoint-style sampling with
 * execution-driven simulation of the representative intervals.
 *
 * (The paper uses 10B / 1B / 100M / 10M-instruction granularities;
 * we preserve the 1 : 1/10 : 1/100 ratios on our smaller streams.)
 */

#include <iostream>

#include "experiments/harness.hh"
#include "isa/emulator.hh"
#include "sampling/simpoint.hh"
#include "util/statistics.hh"
#include "util/table.hh"

namespace
{

using namespace ssim;
using namespace ssim::experiments;

/** Statistical simulation over equal slices; CPI-weighted combine. */
double
slicedStatSim(const Benchmark &bench, const cpu::CoreConfig &cfg,
              uint64_t totalInsts, int slices)
{
    const uint64_t sliceLen = totalInsts / slices;
    if (sliceLen < 2000)
        return 0.0;
    double cpiSum = 0.0;
    int used = 0;
    for (int s = 0; s < slices; ++s) {
        core::ProfileOptions popts;
        popts.skipInsts = sliceLen * s;
        popts.maxInsts = sliceLen;
        const core::StatisticalProfile profile =
            core::buildProfile(bench.program, cfg, popts);
        if (profile.instructions == 0)
            continue;
        core::GenerationOptions gopts;
        gopts.reductionFactor =
            std::max<uint64_t>(2, profile.instructions / 20000);
        const core::SimResult res = core::simulateSyntheticTrace(
            core::generateSyntheticTrace(profile, gopts), cfg);
        if (res.ipc > 0.0) {
            cpiSum += 1.0 / res.ipc;
            ++used;
        }
    }
    return used ? static_cast<double>(used) / cpiSum : 0.0;
}

} // namespace

int
main()
{
    printBanner(std::cout,
                "Figure 8: phase granularity and SimPoint "
                "comparison (IPC error vs full execution-driven "
                "run)");
    const cpu::CoreConfig cfg = cpu::CoreConfig::baseline();
    const int hundred = quickMode() ? 20 : 100;

    TextTable table;
    table.setHeader({"benchmark", "SS 1 profile", "SS 10 profiles",
                     "SS " + std::to_string(hundred) + " profiles",
                     "SimPoint (EDS)", "SimPoint insts"});
    double s1 = 0.0, s10 = 0.0, s100 = 0.0, sp = 0.0;
    int n = 0;
    for (const Benchmark &bench : suitePrograms()) {
        const core::SimResult eds = runEds(bench, cfg);
        const uint64_t total = eds.stats.committed;

        const double ipc1 = runStatSim(bench, cfg).ipc;
        const double ipc10 = slicedStatSim(bench, cfg, total, 10);
        const double ipc100 =
            slicedStatSim(bench, cfg, total, hundred);

        const uint64_t interval = std::max<uint64_t>(total / 100,
                                                     10000);
        const sampling::BbvData bbvs =
            sampling::collectBbvs(bench.program, interval);
        const auto points = sampling::pickSimPoints(bbvs, 10);
        const sampling::SampledResult sampled =
            sampling::simulateSimPoints(bench.program, cfg, points,
                                        interval);

        const double e1 = absoluteError(ipc1, eds.ipc);
        const double e10 = absoluteError(ipc10, eds.ipc);
        const double e100 = absoluteError(ipc100, eds.ipc);
        const double esp = absoluteError(sampled.ipc, eds.ipc);
        table.addRow({bench.name, TextTable::pct(e1),
                      TextTable::pct(e10), TextTable::pct(e100),
                      TextTable::pct(esp),
                      std::to_string(sampled.simulatedInstructions)});
        s1 += e1;
        s10 += e10;
        s100 += e100;
        sp += esp;
        ++n;
    }
    table.addRow({"average", TextTable::pct(s1 / n),
                  TextTable::pct(s10 / n), TextTable::pct(s100 / n),
                  TextTable::pct(sp / n), ""});
    table.print(std::cout);

    std::cout << "\nExpected shape (paper): finer-grained profiles "
                 "help only slightly; SimPoint is somewhat more "
                 "accurate than statistical simulation but must "
                 "simulate far more instructions (and re-simulates "
                 "on every cache/predictor change).\n";
    return 0;
}
