/**
 * @file
 * Ensemble scaling smoke: N-seed parallel ensemble simulation over
 * one shared generation model (core::runSeedEnsemble), measured at
 * 1/2/4/8 worker threads against the serial loop, plus the
 * GenModelCache hit rate for the seed fleet. Writes the numbers as
 * BENCH_ensemble.json via the byte-stable JSON writer.
 *
 * Modes:
 *   bench_ensemble_scaling -o out.json
 *       measure and write the JSON artifact
 *   bench_ensemble_scaling -o out.json --baseline bench/BENCH_ensemble.json
 *       additionally FAIL (exit 1) on
 *        - a 4-thread speedup below `min_speedup_4 * factor` when the
 *          machine has >= 4 hardware threads, or
 *        - a 4-thread speedup below `min_speedup_fallback * factor`
 *          on smaller machines (oversubscribed threads must not make
 *          the ensemble meaningfully slower than the serial loop).
 *       --no-threshold skips both (sanitizer builds run the same
 *       concurrent path for race coverage; their rates mean nothing).
 *
 * Independent of the thresholds, every parallel run is memcmp'd
 * against the serial results per seed: the ensemble's determinism
 * contract (results merged in seed order, bit-identical at any
 * thread count) is enforced here even where the speedup gate cannot
 * be, so the bench has teeth on single-core CI machines too.
 */

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "core/ensemble.hh"
#include "core/gen_model.hh"
#include "core/statsim.hh"
#include "core/sts_frontend.hh"
#include "util/json_writer.hh"
#include "util/process.hh"
#include "workloads/workload.hh"

namespace
{

using namespace ssim;
using Clock = std::chrono::steady_clock;

double
seconds(Clock::time_point t0)
{
    return std::chrono::duration<double>(Clock::now() - t0).count();
}

/**
 * Pull `"key":<number>` out of a flat JSON document. Returns NaN when
 * the key is missing — good enough for the self-produced baseline
 * artifact; this is not a general JSON parser.
 */
double
extractNumber(const std::string &doc, const std::string &key)
{
    const std::string needle = "\"" + key + "\":";
    const size_t pos = doc.find(needle);
    if (pos == std::string::npos)
        return std::nan("");
    return std::strtod(doc.c_str() + pos + needle.size(), nullptr);
}

} // namespace

int
main(int argc, char **argv)
{
    std::string outPath;
    std::string baselinePath;
    double factor = 1.0;
    bool threshold = true;
    int reps = 3;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto next = [&]() -> const char * {
            if (i + 1 >= argc) {
                std::cerr << arg << " needs a value\n";
                std::exit(2);
            }
            return argv[++i];
        };
        if (arg == "-o")
            outPath = next();
        else if (arg == "--baseline")
            baselinePath = next();
        else if (arg == "--factor")
            factor = std::strtod(next(), nullptr);
        else if (arg == "--reps")
            reps = std::atoi(next());
        else if (arg == "--no-threshold")
            threshold = false;
        else {
            std::cerr << "unknown argument: " << arg << "\n";
            return 2;
        }
    }
    reps = std::max(reps, 1);

    constexpr uint64_t ProfileInsts = 400000;
    constexpr uint64_t Reduction = 4;
    constexpr size_t Seeds = 8;
    const unsigned hw =
        std::max(1u, std::thread::hardware_concurrency());

    const isa::Program prog = workloads::build("zip", 1);
    const cpu::CoreConfig cfg = cpu::CoreConfig::baseline();
    core::ProfileOptions popts;
    popts.maxInsts = ProfileInsts;
    auto profile = std::make_shared<const core::StatisticalProfile>(
        core::buildProfile(prog, cfg, popts));

    // The seed fleet resolves its model the way sweep workers and
    // serve batch items do — one content-keyed get() per member — so
    // the recorded hit rate is the real sharing ratio, not a synthetic
    // one: 1 build + (Seeds-1) hits when sharing works.
    core::GenModelCache::instance().clear();
    core::GenerationOptions gopts;
    gopts.reductionFactor = Reduction;
    std::shared_ptr<const core::GenModel> model;
    for (size_t s = 0; s < Seeds; ++s)
        model = core::GenModelCache::instance().get(profile, gopts);
    const core::GenModelCacheStats cstats =
        core::GenModelCache::instance().stats();
    const double hitRate =
        cstats.hits + cstats.misses > 0
            ? static_cast<double>(cstats.hits) /
                  static_cast<double>(cstats.hits + cstats.misses)
            : 0.0;

    std::vector<uint64_t> seeds(Seeds);
    for (size_t s = 0; s < Seeds; ++s)
        seeds[s] = static_cast<uint64_t>(s + 1);

    // Serial reference: the plain per-seed loop the ensemble must be
    // bit-identical to (and the denominator of every speedup).
    std::vector<core::SimResult> serial;
    double serialWall = 1e300;
    for (int rep = 0; rep < reps; ++rep) {
        const auto t0 = Clock::now();
        std::vector<core::SimResult> run;
        run.reserve(Seeds);
        for (uint64_t seed : seeds) {
            core::StreamingGenerator gen(
                model, seed, core::requiredStreamLookback(cfg));
            run.push_back(
                core::simulateSyntheticStream(gen, cfg, nullptr));
        }
        serialWall = std::min(serialWall, seconds(t0));
        serial = std::move(run);
    }

    const unsigned threadPoints[] = {1, 2, 4, 8};
    double speedup[4] = {};
    std::printf("ensemble: %zu seeds, zip, R=%llu, %u hw thread(s)\n",
                Seeds, static_cast<unsigned long long>(Reduction), hw);
    std::printf("serial loop     : %8.3f s\n", serialWall);
    for (int t = 0; t < 4; ++t) {
        core::EnsembleOptions eopts;
        eopts.jobs = threadPoints[t];
        double wall = 1e300;
        for (int rep = 0; rep < reps; ++rep) {
            const auto t0 = Clock::now();
            const std::vector<core::SimResult> results =
                core::runSeedEnsemble(model, cfg, seeds, eopts);
            wall = std::min(wall, seconds(t0));
            // Determinism contract, enforced at every thread count
            // on every machine: per-seed SimStats byte-identical to
            // the serial loop.
            for (size_t s = 0; s < Seeds; ++s) {
                if (std::memcmp(&results[s].stats, &serial[s].stats,
                                sizeof(cpu::SimStats)) != 0) {
                    std::fprintf(stderr,
                                 "FAIL: seed %llu at %u thread(s) "
                                 "diverges from the serial loop\n",
                                 static_cast<unsigned long long>(
                                     seeds[s]),
                                 threadPoints[t]);
                    return 1;
                }
            }
        }
        speedup[t] = serialWall / std::max(wall, 1e-9);
        std::printf("%u thread(s)     : %8.3f s  (%.2fx)\n",
                    threadPoints[t], wall, speedup[t]);
    }
    std::printf("model cache     : %llu hit(s), %llu miss(es) "
                "(hit rate %.3f)\n",
                static_cast<unsigned long long>(cstats.hits),
                static_cast<unsigned long long>(cstats.misses),
                hitRate);

    if (!outPath.empty()) {
        std::string out;
        out += '{';
        util::json::appendField(out, "schema",
                                "ssim-bench-ensemble-v1");
        util::json::appendField(out, "workload", "zip");
        util::json::appendU64(out, "profile_insts", ProfileInsts);
        util::json::appendU64(out, "reduction_factor", Reduction);
        util::json::appendU64(out, "seeds", Seeds);
        util::json::appendU64(out, "hw_threads", hw);
        util::json::appendDouble(out, "serial_wall_s", serialWall);
        util::json::appendDouble(out, "speedup_1", speedup[0]);
        util::json::appendDouble(out, "speedup_2", speedup[1]);
        util::json::appendDouble(out, "speedup_4", speedup[2]);
        util::json::appendDouble(out, "speedup_8", speedup[3]);
        util::json::appendDouble(out, "cache_hit_rate", hitRate);
        util::json::appendU64(out, "peak_rss_kb", peakRssKb());
        out += "}\n";
        std::ofstream f(outPath, std::ios::binary);
        f << out;
        if (!f) {
            std::cerr << "failed to write " << outPath << "\n";
            return 1;
        }
    }

    if (!baselinePath.empty()) {
        std::ifstream f(baselinePath, std::ios::binary);
        if (!f) {
            std::cerr << "cannot read baseline " << baselinePath
                      << "\n";
            return 1;
        }
        std::ostringstream ss;
        ss << f.rdbuf();
        const double min4 = extractNumber(ss.str(), "min_speedup_4");
        const double minFallback =
            extractNumber(ss.str(), "min_speedup_fallback");
        if (std::isnan(min4) || std::isnan(minFallback)) {
            std::cerr << "baseline has no min_speedup_4 / "
                         "min_speedup_fallback\n";
            return 1;
        }
        // The 2.5x-at-4-threads criterion is only measurable where 4
        // hardware threads exist; smaller machines enforce the
        // no-pathological-overhead floor instead (the determinism
        // memcmp above already ran either way).
        const double limit =
            (hw >= 4 ? min4 : minFallback) * factor;
        std::printf("baseline floor  : %.2fx at 4 threads "
                    "(%s, gate at %.2fx)\n",
                    hw >= 4 ? min4 : minFallback,
                    hw >= 4 ? "hw >= 4" : "fallback: hw < 4",
                    limit);
        if (!threshold) {
            std::puts("threshold check skipped (--no-threshold)");
        } else if (speedup[2] < limit) {
            std::fprintf(stderr,
                         "FAIL: 4-thread speedup %.2fx < %.2fx\n",
                         speedup[2], limit);
            return 1;
        }
    }
    std::puts("ensemble scaling OK");
    return 0;
}
