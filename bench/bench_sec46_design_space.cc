/**
 * @file
 * Section 4.6: design space exploration. The paper evaluates 1,792
 * design points (RUU x LSQ x decode x issue x commit widths) with
 * statistical simulation, picks the EDP-optimal point, and verifies
 * with detailed simulation that the pick is (near-)optimal.
 *
 * We sweep the same 1,792-point space with statistical simulation.
 * Full execution-driven validation of every point is infeasible here
 * (it is exactly the cost the technique exists to avoid — the paper
 * burned it once to make the point), so validation samples the space:
 * the SS-chosen optimum is compared by EDS against the SS top-10 and
 * a spread of random points, reporting how close the pick is to the
 * best EDS EDP among the sampled candidates.
 *
 * The per-point sweep runs on the crash-tolerant sweep engine
 * (experiments/sweep.hh): one worker per hardware thread, and —
 * because design-space runs are exactly the workload that dies at
 * point 900 of 1,792 — an optional journal. Set SSIM_SWEEP_JOURNAL
 * to a path prefix to persist one journal per benchmark; rerunning
 * with the same prefix resumes instead of recomputing.
 */

#include <algorithm>
#include <cstdlib>
#include <iostream>
#include <thread>

#include "core/serialize.hh"
#include "experiments/harness.hh"
#include "experiments/sweep.hh"
#include "proxy/features.hh"
#include "util/random.hh"
#include "util/statistics.hh"
#include "util/table.hh"

namespace
{

using namespace ssim;
using namespace ssim::experiments;

struct Point
{
    cpu::CoreConfig cfg;
    std::string name;
};

std::vector<Point>
designSpace()
{
    const std::vector<uint32_t> ruus = {8, 16, 32, 48, 64, 96, 128};
    const std::vector<uint32_t> lsqs = {4, 8, 16, 24, 32, 48, 64};
    const std::vector<uint32_t> widths = {2, 4, 6, 8};
    std::vector<Point> points;
    for (size_t ri = 0; ri < ruus.size(); ++ri) {
        for (size_t li = 0; li <= ri; ++li) {
            for (uint32_t dw : widths) {
                for (uint32_t iw : widths) {
                    for (uint32_t cw : widths) {
                        cpu::CoreConfig cfg =
                            cpu::CoreConfig::baseline();
                        cfg.ruuSize = ruus[ri];
                        cfg.lsqSize = lsqs[li];
                        cfg.decodeWidth = dw;
                        cfg.issueWidth = iw;
                        cfg.commitWidth = cw;
                        points.push_back(
                            {cfg, "ruu" + std::to_string(ruus[ri]) +
                                  "/lsq" + std::to_string(lsqs[li]) +
                                  "/d" + std::to_string(dw) + "i" +
                                  std::to_string(iw) + "c" +
                                  std::to_string(cw)});
                    }
                }
            }
        }
    }
    return points;
}

PointMetrics
toPointMetrics(const std::vector<util::JournalMetric> &metrics)
{
    PointMetrics out;
    out.reserve(metrics.size());
    for (const auto &m : metrics)
        out.emplace_back(m.name, m.value);
    return out;
}

} // namespace

int
main()
{
    printBanner(std::cout,
                "Section 4.6: EDP-optimal design identification");
    const std::vector<Point> space = designSpace();
    std::cout << "design space: " << space.size() << " points\n";

    const auto &suite = suitePrograms();
    const bool quick = quickMode();
    const size_t benchCount = quick ? 3 : suite.size();

    TextTable table;
    table.setHeader({"benchmark", "SS-optimal point", "SS EDP",
                     "EDS EDP @ pick", "best sampled EDS EDP",
                     "pick vs best"});

    for (size_t b = 0; b < benchCount; ++b) {
        const Benchmark &bench = suite[b];

        // One profile and synthetic trace serve the whole sweep
        // (predictor/caches are fixed across these design points).
        StatSimKnobs knobs;
        const auto profile = profileFor(
            bench, cpu::CoreConfig::baseline(), knobs);
        core::GenerationOptions gopts;
        gopts.reductionFactor = std::max<uint64_t>(
            2, profile->instructions / 25000);
        const core::SyntheticTrace trace =
            core::generateSyntheticTrace(*profile, gopts);

        // Evaluate the space through the sweep engine: parallel
        // workers, resumable when a journal prefix is configured.
        SweepOptions sopts;
        sopts.jobs = 0;   // one worker per hardware thread
        if (const char *prefix = std::getenv("SSIM_SWEEP_JOURNAL")) {
            sopts.journalPath =
                std::string(prefix) + "." + bench.name + ".jsonl";
            sopts.resume = true;
        }
        // Stamp provenance and features so the journal doubles as a
        // surrogate training set for `ssim train` (src/proxy).
        sopts.profileChecksum = core::profileDigest(*profile);
        sopts.baseConfigHash =
            configHash(cpu::CoreConfig::baseline());
        sopts.profileFeatures = toPointMetrics(
            proxy::profileFeatureMetrics(*profile));
        std::vector<SweepPoint> sweepPoints;
        sweepPoints.reserve(space.size());
        for (const Point &point : space)
            sweepPoints.push_back(
                {point.name, configHash(point.cfg),
                 toPointMetrics(
                     proxy::configFeatureMetrics(point.cfg))});
        const SweepSummary summary = runSweep(
            sweepPoints,
            [&](size_t p, uint64_t) {
                const core::SimResult r =
                    core::simulateSyntheticTrace(trace, space[p].cfg);
                return PointMetrics{{"edp", r.edp},
                                    {"epc", r.epc},
                                    {"ipc", r.ipc}};
            },
            sopts);

        std::vector<double> edp(space.size());
        for (size_t p = 0; p < space.size(); ++p) {
            if (summary.outcomes[p].status != PointStatus::Ok) {
                std::cerr << "point " << space[p].name << " "
                          << pointStatusName(
                                 summary.outcomes[p].status)
                          << ": " << summary.outcomes[p].message
                          << "\n";
                edp[p] = 1e300;   // never picked as the optimum
                continue;
            }
            edp[p] = summary.outcomes[p].metrics.front().second;
        }

        // Rank by SS EDP.
        std::vector<size_t> order(space.size());
        for (size_t i = 0; i < order.size(); ++i)
            order[i] = i;
        std::sort(order.begin(), order.end(),
                  [&](size_t a, size_t c) { return edp[a] < edp[c]; });
        const size_t pick = order[0];

        // Validate by EDS over the SS top-10 plus random samples.
        std::vector<size_t> candidates(order.begin(),
                                       order.begin() + 10);
        Rng rng(1234 + b);
        for (int i = 0; i < (quick ? 5 : 20); ++i)
            candidates.push_back(rng.below(space.size()));

        double edsAtPick = 0.0;
        double bestEds = 1e300;
        for (size_t p : candidates) {
            const double e = runEds(bench, space[p].cfg).edp;
            if (p == pick)
                edsAtPick = e;
            bestEds = std::min(bestEds, e);
        }

        const double gap = (edsAtPick - bestEds) / bestEds;
        table.addRow({bench.name, space[pick].name,
                      TextTable::num(edp[pick], 2),
                      TextTable::num(edsAtPick, 2),
                      TextTable::num(bestEds, 2),
                      "+" + TextTable::pct(gap, 2)});
    }
    table.print(std::cout);

    std::cout << "\nExpected shape (paper): the SS-identified design "
                 "is the true optimum or within ~1% of it — a region "
                 "of energy-efficient designs is found at a tiny "
                 "fraction of the detailed-simulation cost.\n";
    return 0;
}
