/**
 * @file
 * Section 4.1: simulation speed. Two results are reproduced:
 *  (i) the coefficient of variation (CoV) of IPC across synthetic
 *      traces generated with different random seeds shrinks as the
 *      traces get longer (the paper: ~4% at 100K down to ~1% at 1M
 *      synthetic instructions for 100M-instruction profiles); and
 * (ii) the wall-clock speedup of statistical simulation over
 *      execution-driven simulation.
 *
 * Trace lengths scale with our (smaller) profiled streams; the
 * comparison across lengths preserves the paper's ratios.
 */

#include <iostream>

#include "core/ensemble.hh"
#include "core/gen_model.hh"
#include "experiments/harness.hh"
#include "util/statistics.hh"
#include "util/table.hh"

int
main()
{
    using namespace ssim;
    using namespace ssim::experiments;

    const cpu::CoreConfig cfg = cpu::CoreConfig::baseline();
    const int seeds = quickMode() ? 6 : 20;
    // Synthetic trace length as a fraction of the profiled stream.
    const std::vector<uint64_t> reductions = {160, 80, 40, 20, 10};

    printBanner(std::cout,
                "Section 4.1: IPC CoV vs synthetic trace length (" +
                std::to_string(seeds) + " seeds)");
    TextTable cov;
    {
        std::vector<std::string> header = {"benchmark"};
        for (uint64_t r : reductions)
            header.push_back("R=" + std::to_string(r));
        cov.setHeader(std::move(header));
    }

    std::vector<RunningStats> covByR(reductions.size());
    for (const Benchmark &bench : suitePrograms()) {
        StatSimKnobs knobs;
        const auto profile = profileFor(bench, cfg, knobs);
        std::vector<std::string> row = {bench.name};
        for (size_t i = 0; i < reductions.size(); ++i) {
            // All seeds of one (benchmark, R) cell walk a single
            // shared generation model, simulated by the ensemble
            // pool — the multi-seed shape runSeedEnsemble exists
            // for. Results are bit-identical to the old per-seed
            // generate+simulate loop at any thread count.
            core::GenerationOptions gopts;
            gopts.reductionFactor = reductions[i];
            const auto model =
                core::GenModelCache::instance().get(profile, gopts);
            std::vector<uint64_t> seedList(
                static_cast<size_t>(seeds));
            for (int s = 0; s < seeds; ++s)
                seedList[static_cast<size_t>(s)] =
                    static_cast<uint64_t>(s + 1);
            const std::vector<core::SimResult> results =
                core::runSeedEnsemble(model, cfg, seedList);
            RunningStats ipc;
            for (const core::SimResult &res : results)
                ipc.add(res.ipc);
            const uint64_t traceLen = results.back().stats.committed;
            row.push_back(TextTable::pct(ipc.cov()) + " (" +
                          std::to_string(traceLen / 1000) + "K)");
            covByR[i].add(ipc.cov());
        }
        cov.addRow(std::move(row));
    }
    {
        std::vector<std::string> avg = {"average"};
        for (const RunningStats &s : covByR)
            avg.push_back(TextTable::pct(s.mean()));
        cov.addRow(std::move(avg));
    }
    cov.print(std::cout);
    std::cout << "\nExpected shape: CoV decreases monotonically with "
                 "longer synthetic traces (smaller R).\n";

    printBanner(std::cout,
                "Section 4.1: wall-clock speedup (per benchmark)");
    TextTable speed;
    speed.setHeader({"benchmark", "EDS (s)", "profile (s)",
                     "generate+simulate (s)", "sim speedup"});
    for (const Benchmark &bench : suitePrograms()) {
        core::SimResult eds;
        const double edsSec =
            wallSeconds([&] { eds = runEds(bench, cfg); });

        core::StatSimOptions opts;
        core::StatisticalProfile profile;
        const double profSec = wallSeconds([&] {
            profile = core::buildProfile(bench.program, cfg,
                                         opts.profile);
        });
        core::SimResult ss;
        const double ssSec = wallSeconds([&] {
            core::GenerationOptions gopts;
            gopts.reductionFactor = 20;
            ss = core::simulateSyntheticTrace(
                core::generateSyntheticTrace(profile, gopts), cfg);
        });
        speed.addRow({bench.name, TextTable::num(edsSec, 2),
                      TextTable::num(profSec, 2),
                      TextTable::num(ssSec, 3),
                      TextTable::num(edsSec / std::max(ssSec, 1e-6),
                                     0) + "x"});
    }
    speed.print(std::cout);
    std::cout << "\nNote: the speedup grows linearly with the "
                 "profiled stream length (the paper reports 100x to "
                 "100,000x for 100M to 10B instruction streams); the "
                 "one-off profiling pass is amortized over a design "
                 "space exploration.\n";
    return 0;
}
