/**
 * @file
 * Figure 5: IPC prediction error with immediate-update vs
 * delayed-update branch profiling, under perfect caches (isolating
 * the branch characteristics). Delayed update should reduce the
 * error, most visibly for benchmarks whose Figure 3 discrepancy was
 * largest.
 */

#include <iostream>

#include "experiments/harness.hh"
#include "util/statistics.hh"
#include "util/table.hh"

int
main()
{
    using namespace ssim;
    using namespace ssim::experiments;

    printBanner(std::cout,
                "Figure 5: IPC error, immediate vs delayed update "
                "branch profiling (perfect caches)");
    const cpu::CoreConfig cfg = cpu::CoreConfig::baseline();

    TextTable table;
    table.setHeader({"benchmark", "immediate update",
                     "delayed update"});
    double sumImm = 0.0, sumDel = 0.0;
    int n = 0;
    for (const Benchmark &bench : suitePrograms()) {
        const core::SimResult eds = runEds(bench, cfg, true, false);

        StatSimKnobs imm;
        imm.branchMode = core::BranchProfilingMode::ImmediateUpdate;
        imm.perfectCaches = true;
        const double errImm = absoluteError(
            runStatSim(bench, cfg, imm).ipc, eds.ipc);

        StatSimKnobs del;
        del.branchMode = core::BranchProfilingMode::DelayedUpdate;
        del.perfectCaches = true;
        const double errDel = absoluteError(
            runStatSim(bench, cfg, del).ipc, eds.ipc);

        table.addRow({bench.name, TextTable::pct(errImm),
                      TextTable::pct(errDel)});
        sumImm += errImm;
        sumDel += errDel;
        ++n;
    }
    table.addRow({"average", TextTable::pct(sumImm / n),
                  TextTable::pct(sumDel / n)});
    table.print(std::cout);

    std::cout << "\nExpected shape: delayed-update profiling lowers "
                 "the average IPC error.\n";
    return 0;
}
