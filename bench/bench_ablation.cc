/**
 * @file
 * Ablation study: which pieces of the statistical profile actually
 * buy the accuracy? Each ablation removes one ingredient of the
 * SMART-HLS model and measures the IPC error on the baseline machine:
 *
 *  - full:          the complete k=1 model (reference);
 *  - no-deps:       dependency distances dropped (every operand
 *                   ready at dispatch) — tests the RAW modeling;
 *  - no-branches:   all branches flagged correct — tests the branch
 *                   characteristics;
 *  - no-caches:     all accesses flagged hits — tests the cache
 *                   characteristics;
 *  - k=0:           the SFG replaced by a bag of blocks — tests the
 *                   control-flow context (Figure 4's axis);
 *  - naive-fifo:    delayed-update FIFO without the cycle-structured
 *                   fetch model (immediate update) — the section
 *                   2.1.3 axis.
 *
 * This is the design-choice evidence DESIGN.md points at: every
 * ingredient carries weight on the workloads that stress it.
 */

#include <iostream>

#include "experiments/harness.hh"
#include "util/statistics.hh"
#include "util/table.hh"

namespace
{

using namespace ssim;
using namespace ssim::experiments;

core::SyntheticTrace
ablate(const core::SyntheticTrace &trace, bool dropDeps,
       bool dropBranches, bool dropCaches)
{
    core::SyntheticTrace out = trace;
    for (core::SynthInst &si : out.insts) {
        if (dropDeps) {
            si.depDist[0] = 0;
            si.depDist[1] = 0;
        }
        if (dropBranches) {
            si.outcome = cpu::BranchOutcome::Correct;
        }
        if (dropCaches) {
            si.il1Miss = si.il2Miss = si.itlbMiss = false;
            si.dl1Miss = si.dl2Miss = si.dtlbMiss = false;
        }
    }
    return out;
}

} // namespace

int
main()
{
    printBanner(std::cout,
                "Ablation: IPC error when one profile ingredient "
                "is removed");
    const cpu::CoreConfig cfg = cpu::CoreConfig::baseline();

    TextTable table;
    table.setHeader({"benchmark", "full", "no deps", "no branches",
                     "no caches", "k=0", "immediate-update"});
    std::vector<double> sums(6, 0.0);
    int n = 0;
    for (const Benchmark &bench : suitePrograms()) {
        const core::SimResult eds = runEds(bench, cfg);

        StatSimKnobs knobs;
        const auto profile = profileFor(bench, cfg, knobs);
        core::GenerationOptions gopts;
        gopts.reductionFactor = knobs.reductionFactor;
        const core::SyntheticTrace full =
            core::generateSyntheticTrace(*profile, gopts);

        auto errOf = [&](const core::SyntheticTrace &t) {
            return absoluteError(
                core::simulateSyntheticTrace(t, cfg).ipc, eds.ipc);
        };

        const double eFull = errOf(full);
        const double eDeps = errOf(ablate(full, true, false, false));
        const double eBr = errOf(ablate(full, false, true, false));
        const double eCache = errOf(ablate(full, false, false, true));

        StatSimKnobs k0 = knobs;
        k0.order = 0;
        const double eK0 =
            absoluteError(runStatSim(bench, cfg, k0).ipc, eds.ipc);

        StatSimKnobs imm = knobs;
        imm.branchMode = core::BranchProfilingMode::ImmediateUpdate;
        const double eImm =
            absoluteError(runStatSim(bench, cfg, imm).ipc, eds.ipc);

        table.addRow({bench.name, TextTable::pct(eFull),
                      TextTable::pct(eDeps), TextTable::pct(eBr),
                      TextTable::pct(eCache), TextTable::pct(eK0),
                      TextTable::pct(eImm)});
        const double errs[6] = {eFull, eDeps, eBr, eCache, eK0, eImm};
        for (int i = 0; i < 6; ++i)
            sums[i] += errs[i];
        ++n;
    }
    std::vector<std::string> avg = {"average"};
    for (double s : sums)
        avg.push_back(TextTable::pct(s / n));
    table.addRow(std::move(avg));
    table.print(std::cout);

    std::cout << "\nExpected shape: every ablation hurts somewhere — "
                 "dependencies dominate for high-ILP codes, branch "
                 "flags for mispredict-heavy codes, cache flags for "
                 "memory-bound codes; the full model is the best "
                 "all-rounder.\n";
    return 0;
}
