/**
 * @file
 * Serve request latency smoke check: in-process request->response
 * latency through the full server stack — line parse, admission,
 * worker dispatch, predict, render, respond — with a trivial
 * predictor so the numbers measure the serving machinery, not the
 * simulator. Writes BENCH_serve_latency.json and optionally gates
 * the p99 against a committed ceiling.
 *
 * Modes:
 *   bench_serve_latency -o out.json
 *       measure and write the JSON artifact
 *   bench_serve_latency -o out.json --baseline bench/BENCH_serve_latency.json
 *       additionally FAIL (exit 1) when the measured p99 exceeds
 *       `p99_us * factor` from the checked-in baseline (factor
 *       defaults to 3.0: latency gates need generous headroom, CI
 *       scheduling jitter is tail-shaped). --no-threshold skips the
 *       check for sanitizer builds.
 *
 * The committed baseline stores a conservative ceiling (several times
 * the p99 of the machine that produced it), so the gate trips on real
 * dispatch-path regressions, not on noise.
 */

#include <algorithm>
#include <chrono>
#include <cmath>
#include <condition_variable>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <mutex>
#include <sstream>
#include <string>
#include <vector>

#include "serve/protocol.hh"
#include "serve/server.hh"
#include "util/json_writer.hh"
#include "util/process.hh"

namespace
{

using namespace ssim;
using Clock = std::chrono::steady_clock;

double
extractNumber(const std::string &doc, const std::string &key)
{
    const std::string needle = "\"" + key + "\":";
    const size_t pos = doc.find(needle);
    if (pos == std::string::npos)
        return std::nan("");
    return std::strtod(doc.c_str() + pos + needle.size(), nullptr);
}

struct Percentiles
{
    double p50us = 0.0;
    double p99us = 0.0;
};

Percentiles
percentiles(std::vector<double> &samples)
{
    std::sort(samples.begin(), samples.end());
    Percentiles p;
    p.p50us = samples[samples.size() / 2];
    p.p99us = samples[samples.size() * 99 / 100];
    return p;
}

/**
 * Closed-loop: one request in flight at a time, so each sample is
 * pure dispatch latency with an idle pool, the shape a latency gate
 * can hold steady across machines.
 */
Percentiles
measure(serve::Server &server, size_t requests)
{
    std::mutex mu;
    std::condition_variable cv;
    bool done = false;
    std::vector<double> samples;
    samples.reserve(requests);
    for (size_t i = 0; i < requests; ++i) {
        const std::string line =
            "{\"id\":\"b" + std::to_string(i) +
            "\",\"type\":\"predict\",\"workload\":\"bench\","
            "\"seed\":" + std::to_string(i) + "}";
        const auto t0 = Clock::now();
        done = false;
        server.submitLine(line, [&](const std::string &) {
            std::lock_guard<std::mutex> lk(mu);
            done = true;
            cv.notify_one();
        });
        std::unique_lock<std::mutex> lk(mu);
        cv.wait(lk, [&] { return done; });
        samples.push_back(
            std::chrono::duration<double, std::micro>(Clock::now() -
                                                      t0)
                .count());
    }
    return percentiles(samples);
}

} // namespace

int
main(int argc, char **argv)
{
    std::string outPath;
    std::string baselinePath;
    double factor = 3.0;
    bool threshold = true;
    int reps = 3;
    size_t requests = 2000;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto next = [&]() -> const char * {
            if (i + 1 >= argc) {
                std::cerr << arg << " needs a value\n";
                std::exit(2);
            }
            return argv[++i];
        };
        if (arg == "-o")
            outPath = next();
        else if (arg == "--baseline")
            baselinePath = next();
        else if (arg == "--factor")
            factor = std::strtod(next(), nullptr);
        else if (arg == "--reps")
            reps = std::atoi(next());
        else if (arg == "--requests")
            requests = static_cast<size_t>(std::atoll(next()));
        else if (arg == "--no-threshold")
            threshold = false;
        else {
            std::cerr << "unknown argument: " << arg << "\n";
            return 2;
        }
    }

    serve::ServeOptions opts;
    opts.workers = 2;
    serve::Server server(
        [](const serve::PredictRequest &req) {
            return serve::Metrics{
                {"ipc", 1.0 + static_cast<double>(req.seed % 7)},
                {"epc", 2.0}};
        },
        opts);
    server.start();

    // Warmup: first dispatches pay allocator and thread-wakeup costs.
    (void)measure(server, 200);

    // Best-of-N: noise only ever lengthens a tail, so the smallest
    // p99 across repetitions is the machine's honest dispatch cost.
    Percentiles best;
    best.p50us = best.p99us = 1e300;
    for (int rep = 0; rep < std::max(reps, 1); ++rep) {
        const Percentiles p = measure(server, requests);
        best.p50us = std::min(best.p50us, p.p50us);
        best.p99us = std::min(best.p99us, p.p99us);
    }
    server.awaitDrain();
    server.stop();

    std::printf("requests per rep: %zu\n", requests);
    std::printf("p50 latency     : %10.1f us\n", best.p50us);
    std::printf("p99 latency     : %10.1f us\n", best.p99us);

    if (!outPath.empty()) {
        std::string out;
        out += '{';
        util::json::appendField(out, "schema",
                                "ssim-bench-serve-latency-v1");
        util::json::appendU64(out, "requests", requests);
        util::json::appendU64(out, "workers", opts.workers);
        util::json::appendDouble(out, "p50_us", best.p50us);
        util::json::appendDouble(out, "p99_us", best.p99us);
        util::json::appendU64(out, "peak_rss_kb", peakRssKb());
        out += "}\n";
        std::ofstream f(outPath, std::ios::binary);
        f << out;
        if (!f) {
            std::cerr << "failed to write " << outPath << "\n";
            return 1;
        }
    }

    if (!baselinePath.empty()) {
        std::ifstream f(baselinePath, std::ios::binary);
        if (!f) {
            std::cerr << "cannot read baseline " << baselinePath
                      << "\n";
            return 1;
        }
        std::ostringstream ss;
        ss << f.rdbuf();
        const double ceiling = extractNumber(ss.str(), "p99_us");
        if (std::isnan(ceiling) || ceiling <= 0.0) {
            std::cerr << "baseline has no p99_us\n";
            return 1;
        }
        const double limit = ceiling * factor;
        std::printf("baseline p99    : %10.1f us (gate at %.1f)\n",
                    ceiling, limit);
        if (!threshold) {
            std::puts("threshold check skipped (--no-threshold)");
        } else if (best.p99us > limit) {
            std::fprintf(stderr,
                         "FAIL: p99 latency %.1f us > %.1f us "
                         "(baseline %.1f * factor %.2f)\n",
                         best.p99us, limit, ceiling, factor);
            return 1;
        }
    }
    std::puts("serve latency OK");
    return 0;
}
