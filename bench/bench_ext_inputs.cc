/**
 * @file
 * Extension experiment (beyond the paper): input sensitivity. A
 * statistical profile characterizes one program *execution*, so a
 * profile measured on one input should predict the same program on a
 * different input only as far as the inputs behave alike. This bench
 * quantifies that: for each workload it compares
 *
 *   same-input:  SS(profile of input B) vs EDS(input B)
 *   cross-input: SS(profile of input A) vs EDS(input B)
 *
 * The cross-input error bounds how far a profile generalizes — the
 * caveat a user of the methodology needs to know.
 */

#include <iostream>

#include "core/statsim.hh"
#include "util/statistics.hh"
#include "util/table.hh"
#include "workloads/workload.hh"

int
main()
{
    using namespace ssim;

    printBanner(std::cout,
                "Extension: input sensitivity of statistical "
                "profiles (IPC error vs EDS on input B)");
    const cpu::CoreConfig cfg = cpu::CoreConfig::baseline();

    TextTable table;
    table.setHeader({"benchmark", "same-input", "cross-input"});
    double sumSame = 0.0, sumCross = 0.0;
    int n = 0;
    for (const auto &info : workloads::suite()) {
        const isa::Program inputA = workloads::build(info.name, 1, 0);
        const isa::Program inputB = workloads::build(info.name, 1, 1);

        const core::SimResult edsB =
            core::runExecutionDriven(inputB, cfg);

        core::StatSimOptions opts;
        const double sameIpc =
            core::runStatisticalSimulation(inputB, cfg, opts).ipc;
        const double crossIpc =
            core::runStatisticalSimulation(inputA, cfg, opts).ipc;

        const double errSame = absoluteError(sameIpc, edsB.ipc);
        const double errCross = absoluteError(crossIpc, edsB.ipc);
        table.addRow({info.name, TextTable::pct(errSame),
                      TextTable::pct(errCross)});
        sumSame += errSame;
        sumCross += errCross;
        ++n;
    }
    table.addRow({"average", TextTable::pct(sumSame / n),
                  TextTable::pct(sumCross / n)});
    table.print(std::cout);

    std::cout << "\nExpected shape: cross-input errors exceed "
                 "same-input errors but stay moderate when the "
                 "inputs exercise the program alike — profiles "
                 "characterize executions, not programs.\n";
    return 0;
}
