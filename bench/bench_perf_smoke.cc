/**
 * @file
 * Generation/simulation throughput smoke check: a plain-chrono tool
 * (no google-benchmark dependency) that measures the synthetic hot
 * path in instructions per second and writes the numbers as
 * BENCH_throughput.json via the byte-stable JSON writer.
 *
 * Modes:
 *   bench_perf_smoke -o out.json
 *       measure and write the JSON artifact
 *   bench_perf_smoke -o out.json --baseline bench/BENCH_throughput.json
 *       additionally FAIL (exit 1) when the streamed end-to-end rate
 *       drops below `min_streamed_insts_per_sec * factor` from the
 *       checked-in baseline (factor defaults to 0.8, i.e. a >20%
 *       regression). --no-threshold skips the check (sanitizer
 *       builds run the same path for memory-correctness coverage but
 *       their rates mean nothing).
 *
 * The committed baseline stores a conservative floor below the rate
 * of the machine that produced it, so the gate trips on real
 * algorithmic regressions, not on CI scheduling noise. The current
 * floor (2.7M streamed insts/s) is 3x the pre-event-driven
 * scheduler's 900k/s floor — the event-driven core's acceptance
 * criterion — with the 0.8 factor as the noise margin on top.
 */

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "core/statsim.hh"
#include "core/sts_frontend.hh"
#include "cpu/pipeline/ooo_core.hh"
#include "util/json_writer.hh"
#include "util/process.hh"
#include "workloads/workload.hh"

namespace
{

using namespace ssim;
using Clock = std::chrono::steady_clock;

double
seconds(Clock::time_point t0)
{
    return std::chrono::duration<double>(Clock::now() - t0).count();
}

/**
 * Pull `"key":<number>` out of a flat JSON document. Returns NaN when
 * the key is missing — good enough for the self-produced baseline
 * artifact; this is not a general JSON parser.
 */
double
extractNumber(const std::string &doc, const std::string &key)
{
    const std::string needle = "\"" + key + "\":";
    const size_t pos = doc.find(needle);
    if (pos == std::string::npos)
        return std::nan("");
    return std::strtod(doc.c_str() + pos + needle.size(), nullptr);
}

struct Rates
{
    double genInstsPerSec = 0.0;
    double streamedInstsPerSec = 0.0;
    double materializedInstsPerSec = 0.0;
    uint64_t traceInsts = 0;
};

/** Where the simulation wall-clock goes, from an instrumented run. */
struct StageBreakdown
{
    // Fraction of the profiled stage time per pipeline stage.
    double share[cpu::StageCost::NumStages] = {};
    uint64_t cycles = 0;          ///< cycles accounted (incl. skips)
    uint64_t skippedCycles = 0;   ///< fast-forwarded, never executed
    uint64_t ffSpans = 0;
    uint64_t readyPeak = 0;
};

/**
 * One extra streamed run with per-stage timers enabled: the timers
 * distort absolute rates (two clock reads per stage per cycle), so
 * this run is never used for the throughput numbers — only for the
 * relative commit/writeback/issue/dispatch/fetch shares that point at
 * the next bottleneck.
 */
StageBreakdown
measureStages(const core::StatisticalProfile &profile,
              const cpu::CoreConfig &cfg)
{
    core::GenerationOptions gopts;
    gopts.reductionFactor = 4;
    core::StreamingGenerator gen(profile, gopts,
                                 core::requiredStreamLookback(cfg));
    core::StsFrontend frontend(gen, cfg);
    cpu::OoOCore core(cfg, frontend);
    core.enableStageProfile();
    const cpu::SimStats &stats = core.run();

    StageBreakdown b;
    const cpu::StageCost &cost = core.stageCost();
    double total = 0.0;
    for (double s : cost.seconds)
        total += s;
    for (int i = 0; i < cpu::StageCost::NumStages; ++i)
        b.share[i] = total > 0.0 ? cost.seconds[i] / total : 0.0;
    b.cycles = stats.cycles;
    b.skippedCycles = core.sched().skippedCycles;
    b.ffSpans = core.sched().ffSpans;
    b.readyPeak = core.sched().readyPeak;
    return b;
}

Rates
measure(const core::StatisticalProfile &profile,
        const cpu::CoreConfig &cfg, int reps)
{
    core::GenerationOptions gopts;
    gopts.reductionFactor = 4;

    Rates best;
    // Best-of-N: scheduling noise only ever slows a run down, so the
    // fastest repetition is the closest to the machine's true rate.
    for (int rep = 0; rep < reps; ++rep) {
        {
            core::StreamingGenerator gen(profile, gopts);
            const auto t0 = Clock::now();
            uint64_t pos = 0;
            while (gen.at(pos) != nullptr)
                ++pos;
            const double rate = static_cast<double>(pos) /
                std::max(seconds(t0), 1e-9);
            best.genInstsPerSec = std::max(best.genInstsPerSec, rate);
            best.traceInsts = pos;
        }
        {
            core::StreamingGenerator gen(
                profile, gopts, core::requiredStreamLookback(cfg));
            const auto t0 = Clock::now();
            (void)core::simulateSyntheticStream(gen, cfg);
            const double rate =
                static_cast<double>(gen.generated()) /
                std::max(seconds(t0), 1e-9);
            best.streamedInstsPerSec =
                std::max(best.streamedInstsPerSec, rate);
        }
        {
            const auto t0 = Clock::now();
            const core::SyntheticTrace trace =
                core::generateSyntheticTrace(profile, gopts);
            (void)core::simulateSyntheticTrace(trace, cfg);
            const double rate =
                static_cast<double>(trace.size()) /
                std::max(seconds(t0), 1e-9);
            best.materializedInstsPerSec =
                std::max(best.materializedInstsPerSec, rate);
        }
    }
    return best;
}

} // namespace

int
main(int argc, char **argv)
{
    std::string outPath;
    std::string baselinePath;
    double factor = 0.8;
    bool threshold = true;
    int reps = 3;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto next = [&]() -> const char * {
            if (i + 1 >= argc) {
                std::cerr << arg << " needs a value\n";
                std::exit(2);
            }
            return argv[++i];
        };
        if (arg == "-o")
            outPath = next();
        else if (arg == "--baseline")
            baselinePath = next();
        else if (arg == "--factor")
            factor = std::strtod(next(), nullptr);
        else if (arg == "--reps")
            reps = std::atoi(next());
        else if (arg == "--no-threshold")
            threshold = false;
        else {
            std::cerr << "unknown argument: " << arg << "\n";
            return 2;
        }
    }

    const isa::Program prog = workloads::build("zip", 1);
    const cpu::CoreConfig cfg = cpu::CoreConfig::baseline();
    core::ProfileOptions popts;
    popts.maxInsts = 400000;
    const core::StatisticalProfile profile =
        core::buildProfile(prog, cfg, popts);

    const Rates r = measure(profile, cfg, std::max(reps, 1));
    const StageBreakdown sb = measureStages(profile, cfg);

    std::printf("trace: %llu insts\n",
                static_cast<unsigned long long>(r.traceInsts));
    std::printf("generation-only : %12.0f insts/sec\n",
                r.genInstsPerSec);
    std::printf("streamed e2e    : %12.0f insts/sec\n",
                r.streamedInstsPerSec);
    std::printf("materialized e2e: %12.0f insts/sec\n",
                r.materializedInstsPerSec);
    std::printf("stage shares    : commit %.2f writeback %.2f issue "
                "%.2f dispatch %.2f fetch %.2f\n",
                sb.share[cpu::StageCost::Commit],
                sb.share[cpu::StageCost::Writeback],
                sb.share[cpu::StageCost::Issue],
                sb.share[cpu::StageCost::Dispatch],
                sb.share[cpu::StageCost::Fetch]);
    std::printf("cycles          : %llu (%llu skipped in %llu "
                "fast-forwards)\n",
                static_cast<unsigned long long>(sb.cycles),
                static_cast<unsigned long long>(sb.skippedCycles),
                static_cast<unsigned long long>(sb.ffSpans));

    if (!outPath.empty()) {
        std::string out;
        out += '{';
        util::json::appendField(out, "schema",
                                "ssim-bench-throughput-v2");
        util::json::appendField(out, "workload", "zip");
        util::json::appendU64(out, "profile_insts", popts.maxInsts);
        util::json::appendU64(out, "reduction_factor", 4);
        util::json::appendU64(out, "trace_insts", r.traceInsts);
        util::json::appendDouble(out, "gen_insts_per_sec",
                                 r.genInstsPerSec);
        util::json::appendDouble(out, "streamed_insts_per_sec",
                                 r.streamedInstsPerSec);
        util::json::appendDouble(out, "materialized_insts_per_sec",
                                 r.materializedInstsPerSec);
        util::json::appendDouble(out, "stage_commit_share",
                                 sb.share[cpu::StageCost::Commit]);
        util::json::appendDouble(out, "stage_writeback_share",
                                 sb.share[cpu::StageCost::Writeback]);
        util::json::appendDouble(out, "stage_issue_share",
                                 sb.share[cpu::StageCost::Issue]);
        util::json::appendDouble(out, "stage_dispatch_share",
                                 sb.share[cpu::StageCost::Dispatch]);
        util::json::appendDouble(out, "stage_fetch_share",
                                 sb.share[cpu::StageCost::Fetch]);
        util::json::appendU64(out, "sim_cycles", sb.cycles);
        util::json::appendU64(out, "skipped_cycles",
                              sb.skippedCycles);
        util::json::appendU64(out, "fast_forward_spans", sb.ffSpans);
        util::json::appendU64(out, "ready_queue_peak", sb.readyPeak);
        util::json::appendU64(out, "peak_rss_kb", peakRssKb());
        out += "}\n";
        std::ofstream f(outPath, std::ios::binary);
        f << out;
        if (!f) {
            std::cerr << "failed to write " << outPath << "\n";
            return 1;
        }
    }

    if (!baselinePath.empty()) {
        std::ifstream f(baselinePath, std::ios::binary);
        if (!f) {
            std::cerr << "cannot read baseline " << baselinePath
                      << "\n";
            return 1;
        }
        std::ostringstream ss;
        ss << f.rdbuf();
        const double floorRate =
            extractNumber(ss.str(), "streamed_insts_per_sec");
        if (std::isnan(floorRate) || floorRate <= 0.0) {
            std::cerr << "baseline has no streamed_insts_per_sec\n";
            return 1;
        }
        const double limit = floorRate * factor;
        std::printf("baseline floor  : %12.0f insts/sec "
                    "(gate at %.0f)\n", floorRate, limit);
        if (!threshold) {
            std::puts("threshold check skipped (--no-threshold)");
        } else if (r.streamedInstsPerSec < limit) {
            std::fprintf(stderr,
                         "FAIL: streamed throughput %.0f < %.0f "
                         "(baseline %.0f * factor %.2f)\n",
                         r.streamedInstsPerSec, limit, floorRate,
                         factor);
            return 1;
        }
    }
    std::puts("perf smoke OK");
    return 0;
}
