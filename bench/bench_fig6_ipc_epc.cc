/**
 * @file
 * Figure 6 (and section 4.2.3): absolute accuracy of statistical
 * simulation on the baseline configuration — IPC (left graph), EPC
 * (right graph) and the derived EDP errors. The paper reports average
 * errors of 6.6% (IPC), 4% (EPC) and 11% (EDP).
 */

#include <iostream>

#include "experiments/harness.hh"
#include "util/statistics.hh"
#include "util/table.hh"

int
main()
{
    using namespace ssim;
    using namespace ssim::experiments;

    printBanner(std::cout,
                "Figure 6: absolute IPC and EPC accuracy "
                "(+ section 4.2.3 EDP)");
    const cpu::CoreConfig cfg = cpu::CoreConfig::baseline();

    TextTable table;
    table.setHeader({"benchmark", "IPC (SS)", "IPC (EDS)", "IPC err",
                     "EPC (SS)", "EPC (EDS)", "EPC err", "EDP err"});
    double sumIpc = 0.0, sumEpc = 0.0, sumEdp = 0.0;
    double maxIpc = 0.0, maxEpc = 0.0, maxEdp = 0.0;
    int n = 0;
    for (const Benchmark &bench : suitePrograms()) {
        const core::SimResult eds = runEds(bench, cfg);
        const core::SimResult ss = runStatSim(bench, cfg);

        const double ipcErr = absoluteError(ss.ipc, eds.ipc);
        const double epcErr = absoluteError(ss.epc, eds.epc);
        const double edpErr = absoluteError(ss.edp, eds.edp);
        table.addRow({bench.name, TextTable::num(ss.ipc, 2),
                      TextTable::num(eds.ipc, 2),
                      TextTable::pct(ipcErr),
                      TextTable::num(ss.epc, 1),
                      TextTable::num(eds.epc, 1),
                      TextTable::pct(epcErr),
                      TextTable::pct(edpErr)});
        sumIpc += ipcErr;
        sumEpc += epcErr;
        sumEdp += edpErr;
        maxIpc = std::max(maxIpc, ipcErr);
        maxEpc = std::max(maxEpc, epcErr);
        maxEdp = std::max(maxEdp, edpErr);
        ++n;
    }
    table.addRow({"average", "", "", TextTable::pct(sumIpc / n), "",
                  "", TextTable::pct(sumEpc / n),
                  TextTable::pct(sumEdp / n)});
    table.addRow({"max", "", "", TextTable::pct(maxIpc), "", "",
                  TextTable::pct(maxEpc), TextTable::pct(maxEdp)});
    table.print(std::cout);

    std::cout << "\nPaper reference: 6.6% average / 14.2% max IPC "
                 "error; 4% average EPC error; 11% average EDP "
                 "error.\n";
    return 0;
}
