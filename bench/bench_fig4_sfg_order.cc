/**
 * @file
 * Figure 4: IPC prediction error as a function of the SFG order k,
 * under perfect caches and perfect branch prediction (isolating the
 * control-flow and dependency modeling). The paper's claim: k = 0 can
 * be badly wrong; k >= 1 is accurate and higher orders add little.
 */

#include <iostream>

#include "experiments/harness.hh"
#include "util/statistics.hh"
#include "util/table.hh"

int
main()
{
    using namespace ssim;
    using namespace ssim::experiments;

    printBanner(std::cout,
                "Figure 4: IPC prediction error vs SFG order k "
                "(perfect caches and branch prediction)");
    const cpu::CoreConfig cfg = cpu::CoreConfig::baseline();
    const std::vector<int> orders = {0, 1, 2, 3};

    TextTable table;
    table.setHeader({"benchmark", "k=0", "k=1", "k=2", "k=3"});
    std::vector<double> sums(orders.size(), 0.0);
    int n = 0;
    for (const Benchmark &bench : suitePrograms()) {
        const core::SimResult eds = runEds(bench, cfg, true, true);
        std::vector<std::string> row = {bench.name};
        for (size_t i = 0; i < orders.size(); ++i) {
            StatSimKnobs knobs;
            knobs.order = orders[i];
            knobs.perfectCaches = true;
            knobs.perfectBpred = true;
            const core::SimResult ss = runStatSim(bench, cfg, knobs);
            const double err = absoluteError(ss.ipc, eds.ipc);
            row.push_back(TextTable::pct(err));
            sums[i] += err;
        }
        table.addRow(std::move(row));
        ++n;
    }
    std::vector<std::string> avg = {"average"};
    for (double s : sums)
        avg.push_back(TextTable::pct(s / n));
    table.addRow(std::move(avg));
    table.print(std::cout);

    std::cout << "\nExpected shape: k=0 shows the largest errors; "
                 "k>=1 is markedly more accurate, with little gain "
                 "beyond k=1 (the paper therefore uses k=1).\n";
    return 0;
}
