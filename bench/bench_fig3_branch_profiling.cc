/**
 * @file
 * Figure 3: branch mispredictions per 1000 instructions under three
 * scenarios — execution-driven simulation, branch profiling with
 * immediate update, and branch profiling with delayed update
 * (section 2.1.3). Delayed-update profiling should track the
 * execution-driven rate; immediate update underestimates it.
 */

#include <iostream>

#include "experiments/harness.hh"
#include "util/table.hh"

int
main()
{
    using namespace ssim;
    using namespace ssim::experiments;

    printBanner(std::cout,
                "Figure 3: branch mispredictions per 1000 "
                "instructions");
    const cpu::CoreConfig cfg = cpu::CoreConfig::baseline();

    TextTable table;
    table.setHeader({"benchmark", "execution-driven",
                     "immediate update", "delayed update"});
    double sumEds = 0.0, sumImm = 0.0, sumDel = 0.0;
    int n = 0;
    for (const Benchmark &bench : suitePrograms()) {
        const core::SimResult eds = runEds(bench, cfg);

        StatSimKnobs imm;
        imm.branchMode = core::BranchProfilingMode::ImmediateUpdate;
        const double immRate =
            profileFor(bench, cfg, imm)->mispredictsPerKilo();

        StatSimKnobs del;
        del.branchMode = core::BranchProfilingMode::DelayedUpdate;
        const double delRate =
            profileFor(bench, cfg, del)->mispredictsPerKilo();

        const double edsRate = eds.stats.mispredictsPerKilo();
        table.addRow({bench.name, TextTable::num(edsRate, 2),
                      TextTable::num(immRate, 2),
                      TextTable::num(delRate, 2)});
        sumEds += edsRate;
        sumImm += immRate;
        sumDel += delRate;
        ++n;
    }
    table.addRow({"average", TextTable::num(sumEds / n, 2),
                  TextTable::num(sumImm / n, 2),
                  TextTable::num(sumDel / n, 2)});
    table.print(std::cout);

    std::cout << "\nExpected shape: 'delayed update' tracks "
                 "'execution-driven'; 'immediate update' "
                 "underestimates it.\n";
    return 0;
}
