/**
 * @file
 * Table 3: the number of distinct qualified basic blocks
 * ((k+1)-grams) in the SFG as a function of its order k — the memory
 * footprint argument for modest k.
 */

#include <iostream>

#include "experiments/harness.hh"
#include "util/table.hh"

int
main()
{
    using namespace ssim;
    using namespace ssim::experiments;

    printBanner(std::cout, "Table 3: SFG size vs order k");
    const cpu::CoreConfig cfg = cpu::CoreConfig::baseline();

    TextTable table;
    table.setHeader({"benchmark", "k=0", "k=1", "k=2", "k=3"});
    for (const Benchmark &bench : suitePrograms()) {
        std::vector<std::string> row = {bench.name};
        for (int k : {0, 1, 2, 3}) {
            StatSimKnobs knobs;
            knobs.order = k;
            const auto profile = profileFor(bench, cfg, knobs);
            row.push_back(
                std::to_string(profile->qualifiedBlockCount()));
        }
        table.addRow(std::move(row));
    }
    table.print(std::cout);

    std::cout << "\nExpected shape: counts grow moderately with k "
                 "(control flow constrains the histories that "
                 "actually occur), unlike the state explosion of "
                 "fully qualified instruction schemes.\n";
    return 0;
}
