/**
 * @file
 * Simulator throughput microbenchmarks (google-benchmark): functional
 * emulation, statistical profiling, execution-driven simulation and
 * synthetic-trace simulation, in instructions per second. These back
 * the section 4.1 speed claims with measured rates.
 */

#include <benchmark/benchmark.h>

#include "core/statsim.hh"
#include "core/sts_frontend.hh"
#include "cpu/eds_frontend.hh"
#include "cpu/pipeline/ooo_core.hh"
#include "isa/emulator.hh"
#include "obs/metrics.hh"
#include "workloads/workload.hh"

namespace
{

using namespace ssim;

const isa::Program &
prog()
{
    static const isa::Program p = workloads::build("zip", 1);
    return p;
}

const cpu::CoreConfig &
cfg()
{
    static const cpu::CoreConfig c = cpu::CoreConfig::baseline();
    return c;
}

void
BM_FunctionalEmulation(benchmark::State &state)
{
    const uint64_t n = static_cast<uint64_t>(state.range(0));
    for (auto _ : state) {
        isa::Emulator emu(prog());
        benchmark::DoNotOptimize(emu.run(n));
    }
    state.SetItemsProcessed(
        static_cast<int64_t>(state.iterations() * n));
}
BENCHMARK(BM_FunctionalEmulation)->Arg(200000)
    ->Unit(benchmark::kMillisecond);

void
BM_StatisticalProfiling(benchmark::State &state)
{
    const uint64_t n = static_cast<uint64_t>(state.range(0));
    core::ProfileOptions opts;
    opts.maxInsts = n;
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            core::buildProfile(prog(), cfg(), opts));
    }
    state.SetItemsProcessed(
        static_cast<int64_t>(state.iterations() * n));
}
BENCHMARK(BM_StatisticalProfiling)->Arg(200000)
    ->Unit(benchmark::kMillisecond);

void
BM_ExecutionDrivenSimulation(benchmark::State &state)
{
    const uint64_t n = static_cast<uint64_t>(state.range(0));
    cpu::EdsOptions opts;
    opts.maxInsts = n;
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            core::runExecutionDriven(prog(), cfg(), opts));
    }
    state.SetItemsProcessed(
        static_cast<int64_t>(state.iterations() * n));
}
BENCHMARK(BM_ExecutionDrivenSimulation)->Arg(200000)
    ->Unit(benchmark::kMillisecond);

const core::SyntheticTrace &
sharedTrace()
{
    static const core::SyntheticTrace trace = [] {
        core::ProfileOptions popts;
        popts.maxInsts = 400000;
        const core::StatisticalProfile profile =
            core::buildProfile(prog(), cfg(), popts);
        core::GenerationOptions gopts;
        gopts.reductionFactor = 4;   // ~100K synthetic instructions
        return core::generateSyntheticTrace(profile, gopts);
    }();
    return trace;
}

void
BM_SyntheticTraceSimulation(benchmark::State &state)
{
    const core::SyntheticTrace &trace = sharedTrace();
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            core::simulateSyntheticTrace(trace, cfg()));
    }
    state.SetItemsProcessed(
        static_cast<int64_t>(state.iterations() * trace.size()));
}
BENCHMARK(BM_SyntheticTraceSimulation)
    ->Unit(benchmark::kMillisecond);

/**
 * The observability overhead pair: the run above with telemetry fully
 * on — per-cycle occupancy sampling, windowed IPC, and post-run
 * publication into a metrics registry. The acceptance budget is the
 * instrumented rate staying within 1% of BM_SyntheticTraceSimulation
 * (compare items_per_second between the two).
 */
void
BM_SyntheticTraceSimulationInstrumented(benchmark::State &state)
{
    const core::SyntheticTrace &trace = sharedTrace();
    for (auto _ : state) {
        obs::Registry reg;
        core::ObsSink sink;
        sink.registry = &reg;
        benchmark::DoNotOptimize(
            core::simulateSyntheticTrace(trace, cfg(), &sink));
    }
    state.SetItemsProcessed(
        static_cast<int64_t>(state.iterations() *
                             sharedTrace().size()));
}
BENCHMARK(BM_SyntheticTraceSimulationInstrumented)
    ->Unit(benchmark::kMillisecond);

const core::StatisticalProfile &
sharedProfile()
{
    static const core::StatisticalProfile profile = [] {
        core::ProfileOptions popts;
        popts.maxInsts = 400000;
        return core::buildProfile(prog(), cfg(), popts);
    }();
    return profile;
}

void
BM_SyntheticTraceGeneration(benchmark::State &state)
{
    core::GenerationOptions gopts;
    gopts.reductionFactor = 4;
    uint64_t seed = 0;
    uint64_t insts = 0;
    for (auto _ : state) {
        gopts.seed = ++seed;
        const core::SyntheticTrace t =
            core::generateSyntheticTrace(sharedProfile(), gopts);
        benchmark::DoNotOptimize(t.size());
        insts += t.size();
    }
    state.SetItemsProcessed(static_cast<int64_t>(insts));
}
BENCHMARK(BM_SyntheticTraceGeneration)
    ->Unit(benchmark::kMillisecond);

/**
 * Generation only, streamed: drain the walk through the bounded ring
 * without ever materializing the trace. The gap to
 * BM_SyntheticTraceGeneration is the cost of the vector.
 */
void
BM_SyntheticStreamGenerationOnly(benchmark::State &state)
{
    core::GenerationOptions gopts;
    gopts.reductionFactor = 4;
    uint64_t seed = 0;
    uint64_t insts = 0;
    for (auto _ : state) {
        gopts.seed = ++seed;
        core::StreamingGenerator gen(sharedProfile(), gopts);
        uint64_t pos = 0;
        while (const core::SynthInst *si = gen.at(pos)) {
            benchmark::DoNotOptimize(si->blockId);
            ++pos;
        }
        insts += pos;
    }
    state.SetItemsProcessed(static_cast<int64_t>(insts));
}
BENCHMARK(BM_SyntheticStreamGenerationOnly)
    ->Unit(benchmark::kMillisecond);

/**
 * The end-to-end pair behind the streaming claim: generate + simulate
 * with a materialized intermediate trace vs generation feeding the
 * core directly. Compare items_per_second.
 */
void
BM_SyntheticEndToEndMaterialized(benchmark::State &state)
{
    core::GenerationOptions gopts;
    gopts.reductionFactor = 4;
    uint64_t insts = 0;
    for (auto _ : state) {
        const core::SyntheticTrace t =
            core::generateSyntheticTrace(sharedProfile(), gopts);
        benchmark::DoNotOptimize(
            core::simulateSyntheticTrace(t, cfg()));
        insts += t.size();
    }
    state.SetItemsProcessed(static_cast<int64_t>(insts));
}
BENCHMARK(BM_SyntheticEndToEndMaterialized)
    ->Unit(benchmark::kMillisecond);

void
BM_SyntheticEndToEndStreamed(benchmark::State &state)
{
    core::GenerationOptions gopts;
    gopts.reductionFactor = 4;
    uint64_t insts = 0;
    for (auto _ : state) {
        core::StreamingGenerator gen(
            sharedProfile(), gopts,
            core::requiredStreamLookback(cfg()));
        benchmark::DoNotOptimize(
            core::simulateSyntheticStream(gen, cfg()));
        insts += gen.generated();
    }
    state.SetItemsProcessed(static_cast<int64_t>(insts));
}
BENCHMARK(BM_SyntheticEndToEndStreamed)
    ->Unit(benchmark::kMillisecond);

/**
 * Where the simulation wall-clock goes: the streamed run with
 * per-stage timers on, reported as counters — the share of profiled
 * stage time per pipeline stage plus the event-driven scheduler's
 * skipped-cycle accounting. The timers distort the absolute rate
 * (two clock reads per stage per executed cycle), so read the shares
 * here and the rates from the uninstrumented benchmarks above.
 */
void
BM_SyntheticStreamStageBreakdown(benchmark::State &state)
{
    core::GenerationOptions gopts;
    gopts.reductionFactor = 4;
    cpu::StageCost cost;
    cpu::SchedCounters sched;
    uint64_t insts = 0;
    uint64_t cycles = 0;
    for (auto _ : state) {
        core::StreamingGenerator gen(
            sharedProfile(), gopts,
            core::requiredStreamLookback(cfg()));
        core::StsFrontend frontend(gen, cfg());
        cpu::OoOCore core(cfg(), frontend);
        core.enableStageProfile();
        const cpu::SimStats &stats = core.run();
        benchmark::DoNotOptimize(stats.committed);
        insts += gen.generated();
        cycles += stats.cycles;
        cost = core.stageCost();
        sched = core.sched();
    }
    state.SetItemsProcessed(static_cast<int64_t>(insts));

    double total = 0.0;
    for (double s : cost.seconds)
        total += s;
    const auto share = [&](cpu::StageCost::Stage s) {
        return total > 0.0 ? cost.seconds[s] / total : 0.0;
    };
    state.counters["commit_share"] = share(cpu::StageCost::Commit);
    state.counters["writeback_share"] =
        share(cpu::StageCost::Writeback);
    state.counters["issue_share"] = share(cpu::StageCost::Issue);
    state.counters["dispatch_share"] =
        share(cpu::StageCost::Dispatch);
    state.counters["fetch_share"] = share(cpu::StageCost::Fetch);
    state.counters["sim_cycles"] = static_cast<double>(cycles);
    state.counters["skipped_cycles"] =
        static_cast<double>(sched.skippedCycles);
    state.counters["ff_spans"] = static_cast<double>(sched.ffSpans);
}
BENCHMARK(BM_SyntheticStreamStageBreakdown)
    ->Unit(benchmark::kMillisecond);

} // namespace

BENCHMARK_MAIN();
