/**
 * @file
 * Table 4: relative accuracy of statistical simulation — the error in
 * predicted *trends* when moving between neighbouring design points,
 * for five architectural parameters: window size, processor width,
 * IFQ size, branch predictor size and cache size. Each cell is the
 * relative error RE (section 4.5) averaged over the benchmark suite.
 *
 * As in the paper, the statistical profile is re-measured whenever
 * the branch predictor or cache configuration changes and reused
 * otherwise.
 */

#include <functional>
#include <iostream>

#include "experiments/harness.hh"
#include "util/statistics.hh"
#include "util/table.hh"

namespace
{

using namespace ssim;
using namespace ssim::experiments;

struct Metric
{
    const char *name;
    std::function<double(const core::SimResult &)> get;
};

const Metric IpcM{"IPC", [](const core::SimResult &r) {
    return r.ipc; }};
const Metric EpcM{"EPC", [](const core::SimResult &r) {
    return r.epc; }};
const Metric RuuOccM{"RUU occupancy", [](const core::SimResult &r) {
    return r.stats.avgRuuOccupancy(); }};
const Metric LsqOccM{"LSQ occupancy", [](const core::SimResult &r) {
    return r.stats.avgLsqOccupancy(); }};
const Metric IfqOccM{"IFQ occupancy", [](const core::SimResult &r) {
    return r.stats.avgIfqOccupancy(); }};
const Metric BandwidthM{"execution bandwidth",
                        [](const core::SimResult &r) {
    return r.stats.executionBandwidth(); }};

Metric
powerMetric(const char *name, cpu::PowerUnit unit)
{
    return {name, [unit](const core::SimResult &r) {
        return r.power.of(unit);
    }};
}

/** One sweep family: named design points over one parameter. */
struct Sweep
{
    std::string title;
    std::vector<std::string> pointNames;
    std::vector<cpu::CoreConfig> points;
    std::vector<Metric> metrics;
};

void
runSweep(const Sweep &sweep)
{
    printBanner(std::cout, "Table 4: sensitivity to " + sweep.title);

    const auto &suite = suitePrograms();
    const size_t np = sweep.points.size();

    // results[point][metric] summed over benchmarks (SS and EDS).
    std::vector<std::vector<RunningStats>> relErr(
        np - 1, std::vector<RunningStats>(sweep.metrics.size()));

    for (const Benchmark &bench : suite) {
        std::vector<core::SimResult> eds(np), ss(np);
        for (size_t p = 0; p < np; ++p) {
            eds[p] = runEds(bench, sweep.points[p]);
            ss[p] = runStatSim(bench, sweep.points[p]);
        }
        for (size_t p = 0; p + 1 < np; ++p) {
            for (size_t m = 0; m < sweep.metrics.size(); ++m) {
                const auto &get = sweep.metrics[m].get;
                relErr[p][m].add(relativeError(
                    get(ss[p]), get(ss[p + 1]),
                    get(eds[p]), get(eds[p + 1])));
            }
        }
    }

    TextTable table;
    std::vector<std::string> header = {"metric"};
    for (size_t p = 0; p + 1 < np; ++p)
        header.push_back(sweep.pointNames[p] + " -> " +
                         sweep.pointNames[p + 1]);
    table.setHeader(std::move(header));
    for (size_t m = 0; m < sweep.metrics.size(); ++m) {
        std::vector<std::string> row = {sweep.metrics[m].name};
        for (size_t p = 0; p + 1 < np; ++p)
            row.push_back(TextTable::pct(relErr[p][m].mean()));
        table.addRow(std::move(row));
    }
    table.print(std::cout);
}

} // namespace

int
main()
{
    const bool quick = quickMode();
    const cpu::CoreConfig base = cpu::CoreConfig::baseline();

    // ---- window size (LSQ = RUU / 2) ----
    {
        Sweep sweep;
        sweep.title = "window size (RUU 8..128, LSQ = RUU/2)";
        const std::vector<uint32_t> sizes =
            quick ? std::vector<uint32_t>{16, 64, 128}
                  : std::vector<uint32_t>{8, 16, 32, 48, 64, 96, 128};
        for (uint32_t s : sizes) {
            cpu::CoreConfig cfg = base;
            cfg.ruuSize = s;
            cfg.lsqSize = std::max(4u, s / 2);
            sweep.points.push_back(cfg);
            sweep.pointNames.push_back(std::to_string(s));
        }
        sweep.metrics = {IpcM, RuuOccM, LsqOccM, EpcM,
                         powerMetric("RUU power", cpu::PowerUnit::Ruu),
                         powerMetric("LSQ power",
                                     cpu::PowerUnit::Lsq)};
        runSweep(sweep);
    }

    // ---- processor width ----
    {
        Sweep sweep;
        sweep.title = "processor width (decode = issue = commit)";
        const std::vector<uint32_t> widths =
            quick ? std::vector<uint32_t>{2, 8}
                  : std::vector<uint32_t>{2, 4, 6, 8};
        for (uint32_t w : widths) {
            cpu::CoreConfig cfg = base;
            cfg.decodeWidth = cfg.issueWidth = cfg.commitWidth = w;
            sweep.points.push_back(cfg);
            sweep.pointNames.push_back(std::to_string(w));
        }
        sweep.metrics = {IpcM, BandwidthM, EpcM,
                         powerMetric("fetch power",
                                     cpu::PowerUnit::ICache),
                         powerMetric("dispatch power",
                                     cpu::PowerUnit::Rename),
                         powerMetric("issue power",
                                     cpu::PowerUnit::IssueSel)};
        runSweep(sweep);
    }

    // ---- instruction fetch queue size ----
    {
        Sweep sweep;
        sweep.title = "instruction fetch queue size";
        const std::vector<uint32_t> sizes =
            quick ? std::vector<uint32_t>{4, 32}
                  : std::vector<uint32_t>{4, 8, 16, 32};
        for (uint32_t s : sizes) {
            cpu::CoreConfig cfg = base;
            cfg.ifqSize = s;
            sweep.points.push_back(cfg);
            sweep.pointNames.push_back(std::to_string(s));
        }
        sweep.metrics = {IpcM, EpcM, IfqOccM};
        runSweep(sweep);
    }

    // ---- branch predictor size ----
    {
        Sweep sweep;
        sweep.title = "branch predictor size";
        const std::vector<int> factors =
            quick ? std::vector<int>{-2, 0, 2}
                  : std::vector<int>{-2, -1, 0, 1, 2};
        for (int f : factors) {
            cpu::CoreConfig cfg = base;
            cfg.bpred = cfg.bpred.scaled(f);
            sweep.points.push_back(cfg);
            sweep.pointNames.push_back(
                f == 0 ? "base" : (f < 0
                    ? "base/" + std::to_string(1 << -f)
                    : "base*" + std::to_string(1 << f)));
        }
        sweep.metrics = {IpcM, EpcM, RuuOccM,
                         powerMetric("RUU power", cpu::PowerUnit::Ruu),
                         LsqOccM,
                         powerMetric("LSQ power", cpu::PowerUnit::Lsq),
                         IfqOccM,
                         powerMetric("fetch power",
                                     cpu::PowerUnit::ICache),
                         powerMetric("bpred power",
                                     cpu::PowerUnit::Bpred)};
        runSweep(sweep);
    }

    // ---- cache configuration size ----
    {
        Sweep sweep;
        sweep.title = "cache configuration size (L1 I/D and L2)";
        const std::vector<double> factors =
            quick ? std::vector<double>{0.25, 1.0, 4.0}
                  : std::vector<double>{0.25, 0.5, 1.0, 2.0, 4.0};
        for (double f : factors) {
            cpu::CoreConfig cfg = base;
            cfg.il1 = cfg.il1.scaled(f);
            cfg.dl1 = cfg.dl1.scaled(f);
            cfg.l2 = cfg.l2.scaled(f);
            sweep.points.push_back(cfg);
            sweep.pointNames.push_back(
                f == 1.0 ? "base" : (f < 1.0
                    ? "base/" + std::to_string(
                          static_cast<int>(1.0 / f))
                    : "base*" + std::to_string(
                          static_cast<int>(f))));
        }
        sweep.metrics = {IpcM, EpcM, RuuOccM,
                         powerMetric("RUU power", cpu::PowerUnit::Ruu),
                         LsqOccM,
                         powerMetric("LSQ power", cpu::PowerUnit::Lsq),
                         IfqOccM,
                         powerMetric("icache power",
                                     cpu::PowerUnit::ICache),
                         powerMetric("dcache power",
                                     cpu::PowerUnit::DCache),
                         powerMetric("L2 power", cpu::PowerUnit::L2)};
        runSweep(sweep);
    }

    std::cout << "\nExpected shape: relative errors are small "
                 "(generally below a few percent), well under the "
                 "absolute errors — the property that makes "
                 "statistical simulation useful for design-space "
                 "exploration.\n";
    return 0;
}
