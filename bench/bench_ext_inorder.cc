/**
 * @file
 * Extension experiment (beyond the paper's evaluation): the paper
 * notes the framework "could be extended to ... in-order execution"
 * (section 2.1.1). With register renaming still assumed, the RAW-only
 * profile suffices; this bench measures how well the same statistical
 * profiles predict an in-order-issue variant of the baseline machine,
 * and whether the out-of-order vs in-order IPC *gap* — the kind of
 * early design question statistical simulation targets — is
 * predicted faithfully.
 */

#include <iostream>

#include "experiments/harness.hh"
#include "util/statistics.hh"
#include "util/table.hh"

int
main()
{
    using namespace ssim;
    using namespace ssim::experiments;

    printBanner(std::cout,
                "Extension: in-order issue prediction accuracy");
    cpu::CoreConfig ooo = cpu::CoreConfig::baseline();
    cpu::CoreConfig ino = ooo;
    ino.inOrderIssue = true;

    TextTable table;
    table.setHeader({"benchmark", "in-order IPC (EDS)",
                     "in-order IPC (SS)", "abs error",
                     "OoO/in-order gap (EDS)", "gap (SS)",
                     "gap rel error"});
    double sumErr = 0.0, sumGap = 0.0;
    int n = 0;
    for (const Benchmark &bench : suitePrograms()) {
        const core::SimResult edsO = runEds(bench, ooo);
        const core::SimResult edsI = runEds(bench, ino);
        const core::SimResult ssO = runStatSim(bench, ooo);
        const core::SimResult ssI = runStatSim(bench, ino);

        const double err = absoluteError(ssI.ipc, edsI.ipc);
        const double gapEds = edsO.ipc / edsI.ipc;
        const double gapSs = ssO.ipc / ssI.ipc;
        const double gapErr =
            std::abs(gapSs - gapEds) / gapEds;
        table.addRow({bench.name, TextTable::num(edsI.ipc, 2),
                      TextTable::num(ssI.ipc, 2),
                      TextTable::pct(err),
                      TextTable::num(gapEds, 2),
                      TextTable::num(gapSs, 2),
                      TextTable::pct(gapErr)});
        sumErr += err;
        sumGap += gapErr;
        ++n;
    }
    table.addRow({"average", "", "", TextTable::pct(sumErr / n), "",
                  "", TextTable::pct(sumGap / n)});
    table.print(std::cout);

    std::cout << "\nExpected shape: the unmodified RAW-only profile "
                 "predicts the in-order machine with accuracy "
                 "comparable to the out-of-order case, and the "
                 "out-of-order speedup factor is tracked closely.\n";
    return 0;
}
