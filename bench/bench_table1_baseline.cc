/**
 * @file
 * Table 1 + Table 2: the benchmark suite with baseline IPC, and the
 * baseline machine configuration the other experiments assume.
 */

#include <iostream>

#include "experiments/harness.hh"
#include "util/table.hh"

int
main()
{
    using namespace ssim;
    using namespace ssim::experiments;

    printBanner(std::cout, "Table 2: baseline configuration");
    const cpu::CoreConfig cfg = cpu::CoreConfig::baseline();
    TextTable conf;
    conf.setHeader({"parameter", "value"});
    conf.addRow({"instruction cache",
                 std::to_string(cfg.il1.sizeBytes / 1024) + "KB, " +
                 std::to_string(cfg.il1.assoc) + "-way, " +
                 std::to_string(cfg.il1.lineBytes) + "B lines, " +
                 std::to_string(cfg.il1.latency) + " cycle"});
    conf.addRow({"data cache",
                 std::to_string(cfg.dl1.sizeBytes / 1024) + "KB, " +
                 std::to_string(cfg.dl1.assoc) + "-way, " +
                 std::to_string(cfg.dl1.lineBytes) + "B lines, " +
                 std::to_string(cfg.dl1.latency) + " cycles"});
    conf.addRow({"unified L2",
                 std::to_string(cfg.l2.sizeBytes / 1024) + "KB, " +
                 std::to_string(cfg.l2.assoc) + "-way, " +
                 std::to_string(cfg.l2.lineBytes) + "B lines, " +
                 std::to_string(cfg.l2.latency) + " cycles"});
    conf.addRow({"I/D-TLB", std::to_string(cfg.itlb.entries) +
                 " entries, " + std::to_string(cfg.itlb.missPenalty) +
                 " cycle miss penalty"});
    conf.addRow({"memory",
                 std::to_string(cfg.memLatency) + " cycles"});
    conf.addRow({"branch predictor",
                 "hybrid: 8K bimodal + 8Kx8K local (xor), "
                 "512-entry 4-way BTB, 64-entry RAS"});
    conf.addRow({"misprediction penalty",
                 std::to_string(cfg.mispredictPenalty) + " cycles"});
    conf.addRow({"IFQ", std::to_string(cfg.ifqSize) + " entries"});
    conf.addRow({"RUU / LSQ", std::to_string(cfg.ruuSize) + " / " +
                 std::to_string(cfg.lsqSize) + " entries"});
    conf.addRow({"width", std::to_string(cfg.decodeWidth) +
                 " decode (fetch speed = " +
                 std::to_string(cfg.fetchSpeed) + "), " +
                 std::to_string(cfg.issueWidth) + " issue, " +
                 std::to_string(cfg.commitWidth) + " commit"});
    conf.print(std::cout);

    printBanner(std::cout,
                "Table 1: benchmarks and baseline IPC");
    TextTable table;
    table.setHeader({"benchmark", "archetype", "static insts",
                     "blocks", "dynamic insts", "IPC"});
    for (const Benchmark &bench : suitePrograms()) {
        const core::SimResult res = runEds(bench, cfg);
        table.addRow({bench.name, bench.archetype,
                      std::to_string(bench.program.size()),
                      std::to_string(bench.program.numBlocks()),
                      std::to_string(res.stats.committed),
                      TextTable::num(res.ipc, 2)});
    }
    table.print(std::cout);
    return 0;
}
