/**
 * @file
 * Figure 7: HLS vs SMART-HLS (this paper's framework). Both workload
 * models generate synthetic traces for the same SimpleScalar-like
 * baseline configuration (section 4.3 uses SimpleScalar's default
 * rather than Table 2) and run on the same synthetic-trace simulator,
 * so the comparison isolates the workload model. The paper reports
 * 1.8% (SMART-HLS) vs 10.1% (HLS) average IPC error.
 */

#include <iostream>

#include "baselines/hls.hh"
#include "experiments/harness.hh"
#include "util/statistics.hh"
#include "util/table.hh"

int
main()
{
    using namespace ssim;
    using namespace ssim::experiments;

    printBanner(std::cout,
                "Figure 7: HLS vs SMART-HLS IPC prediction error "
                "(SimpleScalar-like baseline configuration)");
    const cpu::CoreConfig cfg = cpu::CoreConfig::simpleScalarDefault();

    TextTable table;
    table.setHeader({"benchmark", "EDS IPC", "SMART-HLS err",
                     "HLS err"});
    double sumSfg = 0.0, sumHls = 0.0;
    int n = 0;
    for (const Benchmark &bench : suitePrograms()) {
        const core::SimResult eds = runEds(bench, cfg);

        StatSimKnobs knobs;
        const auto profile = profileFor(bench, cfg, knobs);
        core::GenerationOptions gopts;
        gopts.reductionFactor = knobs.reductionFactor;
        const core::SimResult sfg = core::simulateSyntheticTrace(
            core::generateSyntheticTrace(*profile, gopts), cfg);

        baselines::HlsOptions hopts;
        hopts.reductionFactor = knobs.reductionFactor;
        const core::SimResult hls = core::simulateSyntheticTrace(
            baselines::generateHlsTrace(
                baselines::HlsProfile::fromProfile(*profile), hopts),
            cfg);

        const double errSfg = absoluteError(sfg.ipc, eds.ipc);
        const double errHls = absoluteError(hls.ipc, eds.ipc);
        table.addRow({bench.name, TextTable::num(eds.ipc, 2),
                      TextTable::pct(errSfg),
                      TextTable::pct(errHls)});
        sumSfg += errSfg;
        sumHls += errHls;
        ++n;
    }
    table.addRow({"average", "", TextTable::pct(sumSfg / n),
                  TextTable::pct(sumHls / n)});
    table.print(std::cout);

    std::cout << "\nPaper reference: SMART-HLS 1.8% vs HLS 10.1% "
                 "average error. Expected shape: the SFG-based model "
                 "is substantially more accurate.\n";
    return 0;
}
